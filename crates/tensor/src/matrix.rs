//! Dense row-major matrices and vectors.
//!
//! The functional LLM surrogate only requires small dense linear algebra:
//! matrix-vector products for the per-token projections, dot products for the
//! attention scores, and a handful of element-wise transforms.  [`Matrix`] is a
//! simple row-major `Vec<f32>` container with checked constructors and
//! shape-checked operations.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A vector of `f32` values.
///
/// This is a plain type alias: vectors interoperate directly with slices and
/// standard iterator adaptors, which keeps the functional-model code close to
/// the paper's equations.
pub type Vector = Vec<f32>;

/// A dense, row-major matrix of `f32` values.
///
/// # Example
///
/// ```rust
/// use kelle_tensor::Matrix;
///
/// # fn main() -> Result<(), kelle_tensor::TensorError> {
/// let m = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 2.0]])?;
/// let v = m.matvec(&[3.0, 4.0])?;
/// assert_eq!(v, vec![3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "identity dimension must be non-zero");
        let mut m = Self::zeros(n, n).expect("non-zero checked above");
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a vector of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty row set or empty
    /// rows, and [`TensorError::RaggedRows`] if row lengths differ.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in &rows {
            if row.len() != cols {
                return Err(TensorError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`TensorError::EmptyDimension`] for zero dimensions.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { what: "cols" });
        }
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "from_flat",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> Result<&[f32]> {
        if row >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        Ok(&self.data[row * self.cols..(row + 1) * self.cols])
    }

    /// Copies column `col` into a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Result<Vector> {
        if col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: col,
                len: self.cols,
            });
        }
        Ok((0..self.rows).map(|r| self.get(r, col)).collect())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vector> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product into a caller-owned buffer (cleared and
    /// refilled), so hot loops can reuse one allocation across calls.
    ///
    /// Each output element is [`dot`] of the corresponding row with `v`, and
    /// therefore follows the documented multi-accumulator reference ordering;
    /// [`Matrix::matvec`] is a thin allocating wrapper with bitwise-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) -> Result<()> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.extend(self.data.chunks_exact(self.cols).map(|row| dot(row, v)));
        Ok(())
    }

    /// Matrix-vector product restricted to the row range `rows`, into a
    /// caller-owned buffer (cleared and refilled with `rows.len()` elements).
    ///
    /// Each output element is bitwise identical to the corresponding element
    /// of a full [`Matrix::matvec`] (rows are independent [`dot`] products),
    /// so callers that only need a slice of the output — e.g. a single
    /// attention head's rows of a projection — can skip the rest of the work
    /// without changing any result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()` and
    /// [`TensorError::IndexOutOfBounds`] if the range exceeds the row count.
    pub fn matvec_rows_into(
        &self,
        rows: std::ops::Range<usize>,
        v: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<()> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        if rows.end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: rows.end,
                len: self.rows,
            });
        }
        out.clear();
        out.extend(
            self.data[rows.start * self.cols..rows.end * self.cols]
                .chunks_exact(self.cols)
                .map(|row| dot(row, v)),
        );
        Ok(())
    }

    /// Matrix-vector product restricted to the row range `rows`, written into
    /// a caller-provided slice of exactly `rows.len()` elements.
    ///
    /// This is the building block for partitioned projections: output rows
    /// are independent [`dot`] products, so disjoint row ranges written into
    /// disjoint sub-slices of one output buffer reproduce the full
    /// [`Matrix::matvec`] bit for bit regardless of which range runs first.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()` or
    /// `out.len() != rows.len()`, and [`TensorError::IndexOutOfBounds`] if the
    /// range exceeds the row count.
    pub fn matvec_rows_into_slice(
        &self,
        rows: std::ops::Range<usize>,
        v: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows_slice",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        if rows.end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: rows.end,
                len: self.rows,
            });
        }
        if out.len() != rows.len() {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows_slice",
                lhs: (rows.len(), 1),
                rhs: (out.len(), 1),
            });
        }
        let data = &self.data[rows.start * self.cols..rows.end * self.cols];
        for (o, row) in out.iter_mut().zip(data.chunks_exact(self.cols)) {
            *o = dot(row, v);
        }
        Ok(())
    }

    /// Matrix-vector product with the output rows partitioned across a
    /// [`ParallelRunner`](crate::par::ParallelRunner).
    ///
    /// The row space is split into `runner.lanes()` contiguous blocks; each
    /// job computes its block via [`Matrix::matvec_rows_into_slice`] into a
    /// disjoint sub-slice of `out`.  Because every output element is an
    /// independent [`dot`] with the documented reference ordering, the result
    /// is bitwise identical to [`Matrix::matvec_into`] for any lane count and
    /// any job interleaving.  `out` is cleared and refilled (no allocation
    /// once its capacity covers `self.rows()`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec_into_par(
        &self,
        v: &[f32],
        out: &mut Vec<f32>,
        runner: &dyn crate::par::ParallelRunner,
    ) -> Result<()> {
        let lanes = runner.lanes().clamp(1, self.rows);
        if lanes <= 1 {
            return self.matvec_into(v, out);
        }
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.resize(self.rows, 0.0);
        let block = self.rows.div_ceil(lanes);
        let mut jobs: Vec<crate::par::Job> = Vec::with_capacity(lanes);
        let mut start = 0usize;
        for piece in out.chunks_mut(block) {
            let rows = start..start + piece.len();
            start = rows.end;
            jobs.push(Box::new(move || {
                self.matvec_rows_into_slice(rows, v, piece)
                    .expect("shape checked before partitioning");
            }));
        }
        runner.run(jobs);
        Ok(())
    }

    /// Vector-matrix product `v^T * self`, i.e. treating `v` as a row vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f32]) -> Result<Vector> {
        if v.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        for (r, &coeff) in v.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, x) in out.iter_mut().zip(row.iter()) {
                *o += coeff * x;
            }
        }
        Ok(out)
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + a * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows).expect("shape is non-zero");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Scales every element by `factor`, returning a new matrix.
    pub fn scaled(&self, factor: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Element-wise sum with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// The Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Number of `f32` elements stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements (never true for a valid matrix).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Number of independent accumulators (and the chunk width) used by [`dot`].
///
/// # Why 4?
///
/// The `bench_dot_sweep` criterion bench (`crates/bench/benches/dot_sweep.rs`)
/// sweeps accumulator widths 1/2/4/8/16 and row-block sizes for the blocked
/// matvec.  On the x86-64 hosts we measure, width 1 serializes on the ~4-cycle
/// FP add latency; widths 2 and 4 recover most of the throughput by keeping
/// independent add chains in flight; widths beyond 4 show no further gain at
/// the surrogate's short row lengths (32–4096 elements) because the loop
/// becomes load-bound, while burning more registers and a longer reduction
/// tail on every short row.  4 also matches one 128-bit SIMD lane of `f32`s,
/// so LLVM's auto-vectorizer maps the lane array directly onto a vector
/// accumulator.
///
/// Changing this constant changes the documented reference accumulation
/// ordering and therefore every downstream bit-exactness fixture — it is a
/// format-breaking change, not a tuning knob.  The sweep bench exists so the
/// tradeoff can be re-measured without touching the constant.
pub const DOT_LANES: usize = 4;

/// Dot product of two equal-length slices, unrolled into [`DOT_LANES`]
/// independent accumulator chains so LLVM can keep the multiplies in flight
/// (and auto-vectorize) instead of serializing on one floating-point add per
/// element.
///
/// # Reference ordering
///
/// Floating-point addition is not associative, so the accumulation order is
/// part of the function's contract.  The *documented reference ordering* is:
///
/// 1. split the inputs into consecutive chunks of [`DOT_LANES`] elements;
/// 2. lane `j` accumulates the products at offset `j` of every chunk, in
///    chunk order: `acc[j] = Σ_c a[DOT_LANES·c + j] · b[DOT_LANES·c + j]`;
/// 3. the trailing remainder elements (fewer than [`DOT_LANES`]) are added to
///    lanes `0..rem` in order;
/// 4. lanes reduce pairwise: `(acc[0] + acc[1]) + (acc[2] + acc[3])`.
///
/// The property suite checks this implementation bitwise against an
/// independently written realization of the same ordering, so the result is
/// reproducible across platforms and refactors.
///
/// # Panics
///
/// Panics if the slices have different lengths; use in inner loops where the
/// lengths are guaranteed by construction.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product operands must be equal length"
    );
    let mut acc = [0.0f32; DOT_LANES];
    let chunks_a = a.chunks_exact(DOT_LANES);
    let chunks_b = b.chunks_exact(DOT_LANES);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for j in 0..DOT_LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (x, y)) in rem_a.iter().zip(rem_b.iter()).enumerate() {
        acc[j] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_rejects_empty() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::zeros(3, 3).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, TensorError::RaggedRows { .. }));
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let out = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let v = vec![1.0, -1.0, 2.0];
        let a = m.vecmat(&v).unwrap();
        let b = m.transpose().matvec(&v).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_and_column_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1).unwrap(), &[3.0, 4.0]);
        assert_eq!(m.column(0).unwrap(), vec![1.0, 3.0]);
        assert!(m.row(2).is_err());
        assert!(m.column(5).is_err());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // A length crossing several chunks plus a remainder.
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i as f32) * 0.5).collect();
        let expected: f32 = (0..11).map(|i| (i * i) as f32 * 0.5).sum();
        assert!((dot(&a, &b) - expected).abs() < 1e-3);
    }

    /// An independently written realization of the documented reference
    /// ordering (index arithmetic instead of chunk iterators); `dot` must
    /// match it bit for bit.  The proptest suite extends this over random
    /// inputs.
    fn dot_reference_ordering(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; DOT_LANES];
        let full = a.len() / DOT_LANES;
        for c in 0..full {
            for (j, lane) in acc.iter_mut().enumerate() {
                *lane += a[DOT_LANES * c + j] * b[DOT_LANES * c + j];
            }
        }
        for (j, lane) in acc.iter_mut().enumerate().take(a.len() % DOT_LANES) {
            let i = DOT_LANES * full + j;
            *lane += a[i] * b[i];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    #[test]
    fn dot_matches_reference_ordering_bitwise() {
        for len in [0usize, 1, 3, 4, 5, 8, 13, 64, 97] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 1.3).cos() * 2.0).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_reference_ordering(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn matvec_rows_into_matches_full_matvec_bitwise() {
        let m = Matrix::from_rows(vec![
            vec![0.3, -1.2, 4.5],
            vec![1.0, 2.0, 3.0],
            vec![-0.5, 0.25, 9.0],
            vec![2.0, -2.0, 0.5],
        ])
        .unwrap();
        let v = vec![0.11, -0.5, 2.5];
        let full = m.matvec(&v).unwrap();
        let mut slice = Vec::new();
        m.matvec_rows_into(1..3, &v, &mut slice).unwrap();
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].to_bits(), full[1].to_bits());
        assert_eq!(slice[1].to_bits(), full[2].to_bits());
        assert!(m.matvec_rows_into(3..5, &v, &mut slice).is_err());
        assert!(m.matvec_rows_into(0..1, &[1.0], &mut slice).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let m = Matrix::from_rows(vec![
            vec![0.3, -1.2, 4.5, 2.2, -0.7],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        ])
        .unwrap();
        let v = vec![0.11, -0.5, 2.5, 0.0, 1.75];
        let alloc = m.matvec(&v).unwrap();
        let mut buf = vec![7.0; 3];
        m.matvec_into(&v, &mut buf).unwrap();
        assert_eq!(
            alloc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert!(m.matvec_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn matvec_rows_into_slice_matches_full_matvec_bitwise() {
        let m = Matrix::from_rows(vec![
            vec![0.3, -1.2, 4.5],
            vec![1.0, 2.0, 3.0],
            vec![-0.5, 0.25, 9.0],
            vec![2.0, -2.0, 0.5],
        ])
        .unwrap();
        let v = vec![0.11, -0.5, 2.5];
        let full = m.matvec(&v).unwrap();
        let mut out = [0.0f32; 2];
        m.matvec_rows_into_slice(1..3, &v, &mut out).unwrap();
        assert_eq!(out[0].to_bits(), full[1].to_bits());
        assert_eq!(out[1].to_bits(), full[2].to_bits());
        assert!(m.matvec_rows_into_slice(3..5, &v, &mut out).is_err());
        assert!(m.matvec_rows_into_slice(0..1, &v, &mut out).is_err());
        assert!(m.matvec_rows_into_slice(0..2, &[1.0], &mut out).is_err());
    }

    #[test]
    fn matvec_into_par_matches_serial_bitwise() {
        use crate::par::{ParallelRunner, SerialRunner};

        // A runner that claims many lanes but executes inline: exercises the
        // partitioning logic with block counts above, equal to and below the
        // row count.
        #[derive(Debug)]
        struct WideSerial(usize);
        impl ParallelRunner for WideSerial {
            fn lanes(&self) -> usize {
                self.0
            }
            fn run<'a>(&self, jobs: Vec<crate::par::Job<'a>>) {
                // Reverse order: disjoint blocks must make ordering irrelevant.
                for job in jobs.into_iter().rev() {
                    job();
                }
            }
        }

        for rows in [1usize, 2, 3, 7, 16] {
            let m = Matrix::from_flat(
                rows,
                5,
                (0..rows * 5).map(|i| (i as f32 * 0.37).sin()).collect(),
            )
            .unwrap();
            let v: Vec<f32> = (0..5).map(|i| (i as f32 * 1.1).cos()).collect();
            let mut reference = Vec::new();
            m.matvec_into(&v, &mut reference).unwrap();
            for lanes in [1usize, 2, 3, 4, 32] {
                let mut out = Vec::new();
                let runner = WideSerial(lanes);
                m.matvec_into_par(&v, &mut out, &runner).unwrap();
                assert_eq!(
                    reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "rows {rows} lanes {lanes}"
                );
            }
            let mut out = Vec::new();
            assert!(m.matvec_into_par(&[1.0], &mut out, &SerialRunner).is_err());
        }
    }

    #[test]
    fn add_and_scale() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = m.scaled(2.0);
        let sum = m.add(&m).unwrap();
        assert_eq!(s, sum);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let id = Matrix::identity(4);
        assert!((id.frobenius_norm() - 2.0).abs() < 1e-6);
    }
}
