//! IEEE-754 binary16 (half precision) emulation.
//!
//! Kelle stores activations and KV vectors as 16-bit words in eDRAM
//! (§5: "activations and KV vectors are maintained in 16 bits").  The retention
//! faults injected by the two-dimensional adaptive refresh policy (2DRP) flip
//! individual *stored bits*, so the functional model needs a bit-exact 16-bit
//! representation with explicit encode/decode, not just `f32` arithmetic.
//!
//! [`F16`] is a minimal half-precision value type supporting conversion to and
//! from `f32` (round-to-nearest-even), raw-bit access, and bit flipping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 16-bit IEEE-754 half-precision floating point value.
///
/// # Example
///
/// ```rust
/// use kelle_tensor::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // Flipping the most significant *mantissa* bit perturbs the value,
/// // flipping a low-order bit barely changes it -- the asymmetry that
/// // motivates 2DRP's MSB/LSB split.
/// let msb_err = (x.with_bit_flipped(9).to_f32() - 1.5).abs();
/// let lsb_err = (x.with_bit_flipped(0).to_f32() - 1.5).abs();
/// assert!(msb_err > lsb_err);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// The most negative finite value (-65504.0).
    pub const MIN: F16 = F16(0xFBFF);

    /// Creates an `F16` from its raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to half precision with round-to-nearest-even and
    /// saturation to +/- infinity on overflow.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts back to `f32` exactly (every f16 value is representable in f32).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Returns a copy with bit `bit` (0 = LSB, 15 = sign) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn with_bit_flipped(self, bit: u8) -> Self {
        assert!(bit < 16, "f16 bit index must be < 16");
        F16(self.0 ^ (1u16 << bit))
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        let exp = (self.0 >> 10) & 0x1F;
        let mant = self.0 & 0x3FF;
        exp == 0x1F && mant != 0
    }

    /// Whether the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        let exp = (self.0 >> 10) & 0x1F;
        let mant = self.0 & 0x3FF;
        exp == 0x1F && mant == 0
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

/// Converts an `f32` to raw binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        let mant16 = if mant == 0 { 0 } else { 0x200 };
        return sign | 0x7C00 | mant16;
    }

    // Re-bias exponent: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal range.
        let exp16 = (unbiased + 15) as u16;
        let mant16 = (mant >> 13) as u16;
        let round_bit = (mant >> 12) & 1;
        let sticky = mant & 0x0FFF;
        let mut out = sign | (exp16 << 10) | mant16;
        if round_bit == 1 && (sticky != 0 || (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -24 {
        // Subnormal range.
        let shift = (-1 - unbiased) as u32 + 13 - 13; // bits to drop beyond the 13 for normals
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let total_shift = 13 + ((-14 - unbiased) as u32);
        let mant16 = (full_mant >> total_shift) as u16;
        let round_bit = (full_mant >> (total_shift - 1)) & 1;
        let sticky_mask = (1u32 << (total_shift - 1)) - 1;
        let sticky = full_mant & sticky_mask;
        let mut out = sign | mant16;
        if round_bit == 1 && (sticky != 0 || (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        let _ = shift;
        return out;
    }
    // Underflow to signed zero.
    sign
}

/// Converts raw binary16 bits to an `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x3FF) as u32;

    let out_bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut m = mant;
            let mut e = -14i32;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3FF;
            let exp32 = (e + 127) as u32;
            sign | (exp32 << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        if mant == 0 {
            sign | 0x7F80_0000
        } else {
            sign | 0x7FC0_0000
        }
    } else {
        let exp32 = exp + (127 - 15);
        sign | (exp32 << 23) | (mant << 13)
    };
    f32::from_bits(out_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, -3.25, 1024.0, 0.125] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn round_trip_is_close_for_random_range() {
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.037;
            let r = F16::from_f32(v).to_f32();
            let tol = (v.abs() * 1e-3).max(1e-3);
            assert!((r - v).abs() <= tol, "value {v} -> {r}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let x = F16::from_f32(1.0e6);
        assert!(x.is_infinite());
        assert!(x.to_f32().is_infinite());
    }

    #[test]
    fn nan_propagates() {
        let x = F16::from_f32(f32::NAN);
        assert!(x.is_nan());
        assert!(x.to_f32().is_nan());
    }

    #[test]
    fn subnormal_round_trip() {
        let tiny = 3.0e-7f32;
        let r = F16::from_f32(tiny).to_f32();
        assert!((0.0..1e-4).contains(&r));
    }

    #[test]
    fn sign_bit_flip_negates() {
        let x = F16::from_f32(2.0);
        let y = x.with_bit_flipped(15);
        assert_eq!(y.to_f32(), -2.0);
    }

    #[test]
    fn msb_flip_larger_error_than_lsb_flip() {
        let x = F16::from_f32(0.73);
        let base = x.to_f32();
        let msb = (x.with_bit_flipped(13).to_f32() - base).abs();
        let lsb = (x.with_bit_flipped(0).to_f32() - base).abs();
        assert!(msb > lsb * 10.0);
    }

    #[test]
    fn zero_is_all_zero_bits() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn max_constant_matches() {
        assert!((F16::MAX.to_f32() - 65504.0).abs() < 1.0);
        assert!((F16::MIN.to_f32() + 65504.0).abs() < 1.0);
    }
}
