use kelle_arch::*;
use kelle_model::{ModelConfig, ModelKind};

fn main() {
    let model = ModelConfig::for_kind(ModelKind::Llama2_7b);
    for wl in [
        InferenceWorkload::lambada(),
        InferenceWorkload::qasper(),
        InferenceWorkload::pg19(),
    ] {
        println!("== {} ==", wl.name);
        let mut baseline = None;
        for kind in PlatformKind::all() {
            let p = Platform::preset(kind);
            let r = p.simulate(&model, &wl, Some(2048));
            let e = r.total_energy();
            if baseline.is_none() {
                baseline = Some(r.clone());
            }
            let b = baseline.as_ref().unwrap();
            println!("{:16} lat={:8.2}s  E={:9.1}J  speedup={:5.2}  eff={:5.2} | dram={:7.1} buf_w={:7.1} buf_kv={:7.1} refresh={:7.1} rsa={:6.1} static={:6.1}",
                r.platform, r.total_latency_s(), r.total_energy_j(), r.speedup_vs(b), r.energy_efficiency_vs(b),
                e.dram_j, e.weight_buffer_j, e.kv_buffer_j, e.refresh_j, e.rsa_j, e.static_j);
        }
    }
}
