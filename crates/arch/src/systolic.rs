//! The reconfigurable systolic array (RSA, §5.2).
//!
//! The Kelle accelerator uses a 32×32 weight-stationary systolic array of
//! 8-bit MAC PEs clocked at 1 GHz (4.13 INT8 TOPS after accounting for
//! pipeline fill/drain), reconfigurable for in-place transposed matrix
//! multiplication (FAST-style).  The SRAM-baseline platform shrinks it to
//! 24×24 so that the total on-chip area matches Kelle (§8.1.1).
//!
//! The model exposes MAC throughput (with a utilisation term that captures the
//! poor efficiency of single-vector decode at small batch sizes), per-MAC
//! energy and array leakage; per-MAC energy for 8-bit PEs at the paper's 45 nm
//! node is set so that the full RSA at peak activity dissipates its reported
//! power share (17 % of 6.52 W ≈ 1.1 W at 2.05 TMAC/s → ≈ 0.54 pJ/MAC).

use serde::{Deserialize, Serialize};

/// Dimensions and electrical characteristics of a systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystolicArraySpec {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Energy per 8-bit MAC in joules.
    pub energy_per_mac_j: f64,
    /// Leakage/idle power of the array in watts.
    pub leakage_w: f64,
}

impl SystolicArraySpec {
    /// The Kelle accelerator's 32×32 array at 1 GHz.
    pub fn kelle_32x32() -> Self {
        SystolicArraySpec {
            rows: 32,
            cols: 32,
            frequency_hz: 1.0e9,
            energy_per_mac_j: 0.54e-12,
            leakage_w: 0.11,
        }
    }

    /// The area-matched 24×24 array used by the SRAM baselines (§8.1.1).
    pub fn baseline_24x24() -> Self {
        SystolicArraySpec {
            rows: 24,
            cols: 24,
            frequency_hz: 1.0e9,
            energy_per_mac_j: 0.54e-12,
            leakage_w: 0.062,
        }
    }

    /// Peak MAC throughput in MACs per second.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.rows as f64 * self.cols as f64 * self.frequency_hz
    }

    /// Peak arithmetic throughput in INT8 TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.peak_macs_per_s() / 1e12
    }

    /// Utilisation of the array for matrix multiplications with an effective
    /// batch/row dimension of `parallel_rows` (e.g. the batch size during
    /// decoding, or the number of context tokens during pre-fill).
    ///
    /// Weight-stationary arrays stream one input row per cycle; with fewer
    /// than `rows` independent rows in flight the array is under-utilised, and
    /// there is a fixed ~90 % ceiling from pipeline fill/drain (which also
    /// matches the 4.13 INT8 TOPS the paper reports for the 32×32 array).
    pub fn utilization(&self, parallel_rows: usize) -> f64 {
        let fill = (parallel_rows as f64 / self.rows as f64).min(1.0);
        0.905 * fill.max(1.0 / self.rows as f64)
    }

    /// Time in seconds to execute `macs` MAC operations with the given
    /// parallelism (paper Eq. 4 with the utilisation-adjusted throughput).
    pub fn matmul_time_s(&self, macs: u64, parallel_rows: usize) -> f64 {
        macs as f64 / (self.peak_macs_per_s() * self.utilization(parallel_rows))
    }

    /// Dynamic energy in joules to execute `macs` MAC operations.
    pub fn matmul_energy_j(&self, macs: u64) -> f64 {
        macs as f64 * self.energy_per_mac_j
    }

    /// Leakage energy over a window of `duration_s` seconds.
    pub fn leakage_energy_j(&self, duration_s: f64) -> f64 {
        self.leakage_w * duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelle_array_hits_reported_tops() {
        let rsa = SystolicArraySpec::kelle_32x32();
        // 32x32 PEs at 1 GHz = 1.024 TMAC/s = 2.048 TOPS counting one MAC as
        // two ops.  (The paper quotes 4.13 INT8 TOPs for the same array, i.e.
        // it counts four ops per 8-bit MAC PE; the ratio-based results are
        // unaffected by the convention.)
        assert!((rsa.peak_tops() - 2.048).abs() < 0.1);
    }

    #[test]
    fn baseline_array_is_smaller() {
        let kelle = SystolicArraySpec::kelle_32x32();
        let baseline = SystolicArraySpec::baseline_24x24();
        assert!(baseline.peak_macs_per_s() < kelle.peak_macs_per_s());
    }

    #[test]
    fn utilization_grows_with_parallel_rows() {
        let rsa = SystolicArraySpec::kelle_32x32();
        assert!(rsa.utilization(1) < rsa.utilization(16));
        assert!(rsa.utilization(16) < rsa.utilization(32));
        assert!((rsa.utilization(32) - rsa.utilization(64)).abs() < 1e-9);
        assert!(rsa.utilization(64) <= 1.0);
    }

    #[test]
    fn matmul_time_scales_inversely_with_utilization() {
        let rsa = SystolicArraySpec::kelle_32x32();
        let macs = 1_000_000_000;
        assert!(rsa.matmul_time_s(macs, 1) > rsa.matmul_time_s(macs, 32));
    }

    #[test]
    fn energy_is_linear_in_macs() {
        let rsa = SystolicArraySpec::kelle_32x32();
        let e1 = rsa.matmul_energy_j(1_000_000);
        let e2 = rsa.matmul_energy_j(2_000_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
        assert!(rsa.leakage_energy_j(1.0) > 0.0);
    }
}
