//! The systolic evictor (SE, §5.3).
//!
//! AERP needs, on every decoding step, the accumulated importance score of
//! every cached token and the index of the minimum.  Kelle couples a thin
//! column of registers to the RSA so the minimum is found *while* the
//! attention scores stream out of the array, adding no latency to the LLM
//! execution.  Platforms without the SE (e.g. AERP running on the SRAM
//! baseline, or a GPU as discussed in §8.4.2) must run the minimum search and
//! score update as an extra serial pass over the cached tokens.
//!
//! §8.1.4 quantifies the unit: 0.06 mm² (0.6 % of on-chip area), 0.028 W
//! (0.4 % of on-chip power), and avoiding the serial search saves ~7 % latency
//! and ~5 % energy at the system level.

use serde::{Deserialize, Serialize};

/// Cost/benefit model of the systolic evictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystolicEvictor {
    /// Whether the unit is present in the platform.
    pub present: bool,
    /// Area of the unit in mm².
    pub area_mm2: f64,
    /// Power of the unit in watts.
    pub power_w: f64,
    /// Elements per second a host-side (non-systolic) minimum search can scan;
    /// used to cost the eviction pass on platforms *without* the SE.
    pub fallback_scan_rate_per_s: f64,
    /// Energy per scanned element of the fallback search in joules.
    pub fallback_energy_per_element_j: f64,
}

impl SystolicEvictor {
    /// The Kelle configuration (unit present).
    pub fn kelle_default() -> Self {
        SystolicEvictor {
            present: true,
            area_mm2: 0.06,
            power_w: 0.028,
            fallback_scan_rate_per_s: 1.0e9,
            // The serial pass must re-read every accumulated score from the
            // on-chip buffer and update it (~2 bytes in + 2 bytes out at SRAM
            // access energy) on top of the comparison itself.
            fallback_energy_per_element_j: 750.0e-12,
        }
    }

    /// A platform without the systolic evictor (eviction handled in a serial
    /// pass, e.g. the AEP/AERP+SRAM baselines).
    pub fn absent() -> Self {
        SystolicEvictor {
            present: false,
            ..Self::kelle_default()
        }
    }

    /// Extra latency per decoding step caused by the eviction bookkeeping,
    /// given the number of cached tokens scanned per head and the head count.
    ///
    /// With the SE present this is zero (fully overlapped with the RSA);
    /// without it the scan is a serial pass over `cached_tokens × heads`
    /// scores.
    pub fn eviction_latency_s(&self, cached_tokens: usize, heads: usize) -> f64 {
        if self.present {
            0.0
        } else {
            (cached_tokens * heads) as f64 / self.fallback_scan_rate_per_s
        }
    }

    /// Extra energy per decoding step caused by the eviction bookkeeping.
    ///
    /// With the SE present the unit draws its (small) power for the duration
    /// of the step; without it the serial scan pays per-element energy.
    pub fn eviction_energy_j(&self, cached_tokens: usize, heads: usize, step_time_s: f64) -> f64 {
        if self.present {
            self.power_w * step_time_s
        } else {
            (cached_tokens * heads) as f64 * self.fallback_energy_per_element_j
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_unit_adds_no_latency() {
        let se = SystolicEvictor::kelle_default();
        assert_eq!(se.eviction_latency_s(2048, 32), 0.0);
    }

    #[test]
    fn absent_unit_pays_serial_scan() {
        let se = SystolicEvictor::absent();
        let lat = se.eviction_latency_s(2048, 32);
        assert!(lat > 0.0);
        // 65k elements at 1 G/s ~ 66 us.
        assert!((lat - 65.536e-6).abs() < 1e-6);
    }

    #[test]
    fn energy_tradeoff() {
        let present = SystolicEvictor::kelle_default();
        let absent = SystolicEvictor::absent();
        let step = 1e-3;
        // For long contexts the serial scan costs more energy than the SE.
        let e_present = present.eviction_energy_j(4096, 32, step);
        let e_absent = absent.eviction_energy_j(4096, 32, step);
        assert!(e_absent > e_present);
    }

    #[test]
    fn reported_overheads() {
        let se = SystolicEvictor::kelle_default();
        assert!((se.area_mm2 - 0.06).abs() < 1e-9);
        assert!((se.power_w - 0.028).abs() < 1e-9);
    }
}
