//! Area and power breakdown of the accelerator (§8, Fig. 3b).
//!
//! The paper reports, for the Kelle accelerator synthesised at 45 nm /
//! 1 GHz: 9.5 mm² of on-chip area split RSA 23 % / eDRAM 33 % / SRAM 37 % /
//! SFU 7 %, and 6.52 W of on-chip power split RSA 17 % / eDRAM 29 % /
//! SRAM 41 % / SFU 13 %, plus a 16 mm² / 11.74 W LPDDR4 DRAM.  The breakdown
//! here is reconstructed from the memory specs (Table 1 densities) and the
//! logic-block budgets, and is used by the Fig. 3b figure generator and the
//! `tables --table area-power` report.

use crate::evictor::SystolicEvictor;
use crate::memory::MemorySubsystem;
use crate::sfu::SpecialFunctionUnit;
use crate::systolic::SystolicArraySpec;
use serde::{Deserialize, Serialize};

/// Per-MAC-PE area at the modelled node, calibrated so the 32×32 array lands
/// on its reported ~23 % share of the 9.5 mm² Kelle accelerator.
const PE_AREA_MM2: f64 = 0.00213;
/// SFU area (LUTs, accumulators, normalisation datapath).
const SFU_AREA_MM2: f64 = 0.67;
/// Controller / interface / NoC area.
const LOGIC_AREA_MM2: f64 = 0.35;

/// Area breakdown of an accelerator configuration, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Systolic array area.
    pub rsa_mm2: f64,
    /// SFU area.
    pub sfu_mm2: f64,
    /// On-chip memory area (SRAM + eDRAM).
    pub memory_mm2: f64,
    /// Controllers, interfaces and the systolic evictor.
    pub logic_mm2: f64,
    /// Off-chip DRAM die area (reported separately by the paper).
    pub dram_mm2: f64,
}

impl AreaBreakdown {
    /// Computes the breakdown for a platform's components.
    pub fn for_components(
        compute: &SystolicArraySpec,
        memory: &MemorySubsystem,
        evictor: &SystolicEvictor,
    ) -> Self {
        let rsa = compute.rows as f64 * compute.cols as f64 * PE_AREA_MM2;
        let memory_mm2 = memory.weight_memory.area_mm2()
            + memory.kv_memory.area_mm2()
            + memory.activation_memory.area_mm2();
        let logic = LOGIC_AREA_MM2
            + if evictor.present {
                evictor.area_mm2
            } else {
                0.0
            };
        AreaBreakdown {
            rsa_mm2: rsa,
            sfu_mm2: SFU_AREA_MM2,
            memory_mm2,
            logic_mm2: logic,
            dram_mm2: memory.dram.area_mm2,
        }
    }

    /// Total on-chip area in mm² (excluding the DRAM die).
    pub fn onchip_total_mm2(&self) -> f64 {
        self.rsa_mm2 + self.sfu_mm2 + self.memory_mm2 + self.logic_mm2
    }
}

/// Power breakdown of an accelerator configuration, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Systolic array power at full activity.
    pub rsa_w: f64,
    /// SFU power.
    pub sfu_w: f64,
    /// On-chip memory power (access + leakage at the nominal activity).
    pub memory_w: f64,
    /// DRAM interface/device power.
    pub dram_w: f64,
}

impl PowerBreakdown {
    /// Computes the nominal power breakdown for a platform's components.
    ///
    /// Memory power combines leakage with access power at the nominal
    /// activity factor (the sustained bandwidth utilisation of §8's
    /// configuration, ~20 %).
    pub fn for_components(
        compute: &SystolicArraySpec,
        sfu: &SpecialFunctionUnit,
        memory: &MemorySubsystem,
    ) -> Self {
        let activity = 0.2;
        let rsa_w = compute.peak_macs_per_s() * compute.energy_per_mac_j * 0.55 + compute.leakage_w;
        let sfu_w = sfu.elements_per_s * sfu.energy_per_element_j * activity + sfu.leakage_w;
        let memory_access_w = (memory.weight_memory.bandwidth_bytes_per_s
            * memory.weight_memory.technology.access_energy_pj_per_byte()
            + memory.kv_memory.bandwidth_bytes_per_s
                * memory.kv_memory.technology.access_energy_pj_per_byte())
            * 1e-12
            * activity;
        let memory_w = memory_access_w + memory.onchip_leakage_w();
        let dram_w =
            memory.dram.bandwidth_bytes_per_s * memory.dram.access_energy_pj_per_byte * 1e-12
                + memory.dram.background_power_w;
        PowerBreakdown {
            rsa_w,
            sfu_w,
            memory_w,
            dram_w,
        }
    }

    /// Total on-chip power in watts (excluding DRAM).
    pub fn onchip_total_w(&self) -> f64 {
        self.rsa_w + self.sfu_w + self.memory_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kelle_components() -> (
        SystolicArraySpec,
        SpecialFunctionUnit,
        MemorySubsystem,
        SystolicEvictor,
    ) {
        (
            SystolicArraySpec::kelle_32x32(),
            SpecialFunctionUnit::kelle_default(),
            MemorySubsystem::kelle_default(),
            SystolicEvictor::kelle_default(),
        )
    }

    #[test]
    fn kelle_onchip_area_close_to_reported() {
        let (rsa, _, mem, se) = kelle_components();
        let area = AreaBreakdown::for_components(&rsa, &mem, &se);
        let total = area.onchip_total_mm2();
        // §8 reports 9.5 mm^2; the reconstruction should land within ~20 %.
        assert!(total > 7.5 && total < 11.5, "got {total}");
        assert_eq!(area.dram_mm2, 16.0);
    }

    #[test]
    fn memory_dominates_area_as_reported() {
        let (rsa, _, mem, se) = kelle_components();
        let area = AreaBreakdown::for_components(&rsa, &mem, &se);
        // SRAM (37%) + eDRAM (33%) = 70% of on-chip area in the paper.
        let share = area.memory_mm2 / area.onchip_total_mm2();
        assert!(share > 0.5 && share < 0.85, "memory share {share}");
    }

    #[test]
    fn edram_system_smaller_than_equal_capacity_sram_system() {
        // Fig. 3b: 8 MB eDRAM system takes less area than the 8 MB SRAM system.
        let rsa = SystolicArraySpec::kelle_32x32();
        let se = SystolicEvictor::absent();
        let mut edram_mem = MemorySubsystem::kelle_default();
        edram_mem.kv_memory =
            kelle_edram::MemorySpec::new(kelle_edram::MemoryTechnology::Edram, 8 << 20, 256.0);
        let mut sram_mem = MemorySubsystem::baseline_sram();
        sram_mem.kv_memory =
            kelle_edram::MemorySpec::new(kelle_edram::MemoryTechnology::Sram, 8 << 20, 128.0);
        let a_edram = AreaBreakdown::for_components(&rsa, &edram_mem, &se);
        let a_sram = AreaBreakdown::for_components(&rsa, &sram_mem, &se);
        assert!(a_edram.onchip_total_mm2() < a_sram.onchip_total_mm2());
    }

    #[test]
    fn kelle_onchip_power_close_to_reported() {
        let (rsa, sfu, mem, _) = kelle_components();
        let power = PowerBreakdown::for_components(&rsa, &sfu, &mem);
        let total = power.onchip_total_w();
        // §8 reports 6.52 W on-chip; allow a generous band for the analytic model.
        assert!(total > 4.0 && total < 11.0, "got {total}");
        // DRAM power reported as 11.74 W.
        assert!(
            power.dram_w > 6.0 && power.dram_w < 14.0,
            "dram {}",
            power.dram_w
        );
    }
}
