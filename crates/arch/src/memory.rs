//! The accelerator's memory subsystem (§5.1).
//!
//! Kelle splits on-chip storage into a 2 MB weight SRAM, a 4 MB banked
//! KV-cache eDRAM and a 256 KB activation eDRAM; the SRAM baselines use one
//! unified SRAM for everything.  Model weights are far larger than any on-chip
//! memory (≈ 6.5 GB at 8 bits for LLaMA2-7B), so weights always stream from
//! the LPDDR4 channel through the weight memory; the KV cache is served from
//! the on-chip KV memory up to its capacity and spills the remainder to DRAM.

use kelle_edram::{BankedLayout, DramSpec, MemorySpec, MemoryTechnology, MemoryTier, NvmeSpec};
use serde::{Deserialize, Serialize};

/// Cost of one traffic operation, split by where the bytes moved.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrafficCost {
    /// Exposed transfer time in seconds.
    pub time_s: f64,
    /// Energy spent in on-chip memories, in joules.
    pub onchip_energy_j: f64,
    /// Energy spent on the DRAM channel, in joules.
    pub dram_energy_j: f64,
    /// Bytes served on-chip.
    pub onchip_bytes: u64,
    /// Bytes served from DRAM.
    pub dram_bytes: u64,
}

/// The on-chip + off-chip memory configuration of a platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySubsystem {
    /// Weight buffer (always SRAM in the evaluated platforms).
    pub weight_memory: MemorySpec,
    /// KV-cache memory (SRAM for the baselines, banked eDRAM for Kelle).
    pub kv_memory: MemorySpec,
    /// Activation buffer (Kelle uses a small dedicated eDRAM; the SRAM
    /// baselines carve activations out of the unified SRAM).
    pub activation_memory: MemorySpec,
    /// Bank organisation of the KV memory (only meaningful for eDRAM).
    pub kv_banks: Option<BankedLayout>,
    /// The off-chip DRAM channel.
    pub dram: DramSpec,
    /// The NVMe storage tier backing the coldest KV data (`kelle::tier`).
    pub nvme: NvmeSpec,
}

impl MemorySubsystem {
    /// The Kelle accelerator's memory subsystem: 2 MB weight SRAM (128 GB/s),
    /// 4 MB KV eDRAM (256 GB/s, 32 banks), 256 KB activation eDRAM.
    pub fn kelle_default() -> Self {
        MemorySubsystem {
            weight_memory: MemorySpec::kelle_weight_sram(),
            kv_memory: MemorySpec::kelle_kv_edram(),
            activation_memory: MemorySpec::kelle_activation_edram(),
            kv_banks: Some(BankedLayout::kelle_default()),
            dram: DramSpec::lpddr4_16gb(),
            nvme: NvmeSpec::edge_m2_256gb(),
        }
    }

    /// The area-matched SRAM baseline: a 4 MB unified SRAM of which 2 MB acts
    /// as the weight buffer, ~1.75 MB as KV storage and 256 KB as activation
    /// buffer (§8.1.1 keeps total on-chip area equal to Kelle, which is why
    /// the SRAM platform ends up with both less storage and a smaller array).
    pub fn baseline_sram() -> Self {
        MemorySubsystem {
            weight_memory: MemorySpec::new(MemoryTechnology::Sram, 2 * 1024 * 1024, 128.0),
            kv_memory: MemorySpec::new(MemoryTechnology::Sram, 1792 * 1024, 128.0),
            activation_memory: MemorySpec::new(MemoryTechnology::Sram, 256 * 1024, 128.0),
            kv_banks: None,
            dram: DramSpec::lpddr4_16gb(),
            nvme: NvmeSpec::edge_m2_256gb(),
        }
    }

    /// A Kelle-style subsystem with the §8.3.7 halved-bandwidth eDRAM (same
    /// capacity, 16 banks, 128 GB/s).
    pub fn kelle_halved_bandwidth() -> Self {
        let mut base = Self::kelle_default();
        base.kv_memory = MemorySpec::new(MemoryTechnology::Edram, 4 * 1024 * 1024, 128.0);
        base.kv_banks = Some(BankedLayout::kelle_default().halved_banks());
        base
    }

    /// Whether the KV memory is eDRAM (and therefore needs refresh).
    pub fn kv_is_edram(&self) -> bool {
        self.kv_memory.technology == MemoryTechnology::Edram
    }

    /// Total on-chip capacity in bytes.
    pub fn onchip_capacity_bytes(&self) -> u64 {
        self.weight_memory.capacity_bytes
            + self.kv_memory.capacity_bytes
            + self.activation_memory.capacity_bytes
    }

    /// Sum of on-chip leakage power in watts.
    pub fn onchip_leakage_w(&self) -> f64 {
        self.weight_memory.leakage_w()
            + self.kv_memory.leakage_w()
            + self.activation_memory.leakage_w()
    }

    /// Cost of streaming `bytes` bytes of weights from DRAM through the weight
    /// buffer into the array.
    pub fn weight_stream_cost(&self, bytes: u64) -> TrafficCost {
        let dram_time = self.dram.access_time_s(bytes);
        let sram_time = self.weight_memory.access_time_s(bytes);
        TrafficCost {
            time_s: dram_time.max(sram_time),
            onchip_energy_j: self.weight_memory.access_energy_j(bytes),
            dram_energy_j: self.dram.access_energy_j(bytes),
            onchip_bytes: bytes,
            dram_bytes: bytes,
        }
    }

    /// Cost of reading `resident_bytes` of KV data that fit in the on-chip KV
    /// memory plus `overflow_bytes` that must come from DRAM.
    pub fn kv_read_cost(&self, resident_bytes: u64, overflow_bytes: u64) -> TrafficCost {
        let onchip_time = self.kv_memory.access_time_s(resident_bytes);
        let dram_time = if overflow_bytes > 0 {
            self.dram.access_time_s(overflow_bytes)
        } else {
            0.0
        };
        TrafficCost {
            // On-chip reads and DRAM fetches of the overflow proceed in
            // parallel on separate interfaces; the step waits for the slower.
            time_s: onchip_time.max(dram_time),
            // DRAM-fetched KV data is staged through the on-chip KV buffer
            // before reaching the array, so it pays the buffer access energy
            // in addition to the channel energy.
            onchip_energy_j: self
                .kv_memory
                .access_energy_j(resident_bytes + overflow_bytes),
            dram_energy_j: self.dram.access_energy_j(overflow_bytes),
            onchip_bytes: resident_bytes + overflow_bytes,
            dram_bytes: overflow_bytes,
        }
    }

    /// Cost of writing `bytes` of new KV data, split between on-chip residence
    /// and DRAM spill in the same proportion as the read path.
    pub fn kv_write_cost(&self, resident_bytes: u64, overflow_bytes: u64) -> TrafficCost {
        // Writes and reads cost the same per byte in the Table 1 model.
        self.kv_read_cost(resident_bytes, overflow_bytes)
    }

    /// Splits a total KV working set into (on-chip, DRAM-overflow) bytes given
    /// the KV memory capacity.
    pub fn split_kv_residency(&self, total_bytes: u64) -> (u64, u64) {
        self.split_kv_residency_capped(total_bytes, None)
    }

    /// Like [`split_kv_residency`](MemorySubsystem::split_kv_residency), but
    /// the workload only gets `granted_bytes` of the KV memory (its share
    /// under capacity arbitration).  The grant is itself capped by the
    /// physical capacity; `None` grants the whole memory.
    pub fn split_kv_residency_capped(
        &self,
        total_bytes: u64,
        granted_bytes: Option<u64>,
    ) -> (u64, u64) {
        let capacity = self.kv_memory.capacity_bytes;
        let granted = granted_bytes.map_or(capacity, |g| g.min(capacity));
        if total_bytes <= granted {
            (total_bytes, 0)
        } else {
            (granted, total_bytes - granted)
        }
    }

    /// Transfer time and energy of one side (read or write) of a tier
    /// migration, plus whether that side is on-chip.
    fn tier_side_cost(&self, tier: MemoryTier, bytes: u64) -> (f64, f64, bool) {
        match tier {
            MemoryTier::Edram => (
                self.kv_memory.access_time_s(bytes),
                self.kv_memory.access_energy_j(bytes),
                true,
            ),
            MemoryTier::Dram => (
                self.dram.access_time_s(bytes),
                self.dram.access_energy_j(bytes),
                false,
            ),
            MemoryTier::Nvme => (
                self.nvme.access_time_s(bytes),
                self.nvme.access_energy_j(bytes),
                false,
            ),
        }
    }

    /// Cost of migrating `bytes` of KV data from tier `from` to tier `to`
    /// (a `kelle::tier` demotion or promotion): the payload is read out of
    /// the source and written into the destination, the two interfaces
    /// streaming in parallel so the exposed time is the slower side's.  The
    /// eDRAM side charges on-chip energy/bytes; DRAM and NVMe sides are both
    /// off-chip and charge the `dram_*` fields (the payload is counted once,
    /// with both sides' energies summed).
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn kv_migration_cost(&self, from: MemoryTier, to: MemoryTier, bytes: u64) -> TrafficCost {
        assert_ne!(from, to, "migration requires distinct tiers");
        let (read_time, read_energy, read_onchip) = self.tier_side_cost(from, bytes);
        let (write_time, write_energy, write_onchip) = self.tier_side_cost(to, bytes);
        let onchip_energy: f64 = [(read_energy, read_onchip), (write_energy, write_onchip)]
            .iter()
            .filter(|&&(_, onchip)| onchip)
            .map(|&(energy, _)| energy)
            .sum();
        let offchip_energy = read_energy + write_energy - onchip_energy;
        TrafficCost {
            time_s: read_time.max(write_time),
            onchip_energy_j: onchip_energy,
            dram_energy_j: offchip_energy,
            onchip_bytes: if read_onchip || write_onchip {
                bytes
            } else {
                0
            },
            dram_bytes: if !read_onchip || !write_onchip {
                bytes
            } else {
                0
            },
        }
    }

    /// Cost of moving `bytes` of activations through the activation buffer.
    pub fn activation_cost(&self, bytes: u64) -> TrafficCost {
        TrafficCost {
            time_s: self.activation_memory.access_time_s(bytes),
            onchip_energy_j: self.activation_memory.access_energy_j(bytes),
            dram_energy_j: 0.0,
            onchip_bytes: bytes,
            dram_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelle_subsystem_shape() {
        let mem = MemorySubsystem::kelle_default();
        assert!(mem.kv_is_edram());
        assert_eq!(mem.kv_memory.capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(mem.weight_memory.capacity_bytes, 2 * 1024 * 1024);
        assert_eq!(mem.kv_banks.unwrap().total_banks, 32);
    }

    #[test]
    fn baseline_sram_has_no_refreshable_memory() {
        let mem = MemorySubsystem::baseline_sram();
        assert!(!mem.kv_is_edram());
        assert!(mem.kv_banks.is_none());
        // Area parity: the SRAM platform's on-chip capacity is smaller than
        // Kelle's because SRAM is less dense.
        assert!(
            mem.onchip_capacity_bytes() < MemorySubsystem::kelle_default().onchip_capacity_bytes()
        );
    }

    #[test]
    fn weight_stream_is_dram_bound() {
        let mem = MemorySubsystem::kelle_default();
        let cost = mem.weight_stream_cost(1 << 30);
        // 1 GiB at 64 GB/s ~ 16.8 ms, far above the SRAM time.
        assert!(cost.time_s > 0.015);
        assert!(cost.dram_energy_j > cost.onchip_energy_j * 0.5);
    }

    #[test]
    fn kv_residency_split() {
        let mem = MemorySubsystem::kelle_default();
        assert_eq!(mem.split_kv_residency(1024), (1024, 0));
        let (resident, overflow) = mem.split_kv_residency(10 * 1024 * 1024);
        assert_eq!(resident, 4 * 1024 * 1024);
        assert_eq!(overflow, 6 * 1024 * 1024);
    }

    #[test]
    fn capped_residency_split_respects_grant_and_capacity() {
        let mem = MemorySubsystem::kelle_default();
        // A grant below capacity shifts bytes from on-chip to DRAM overflow.
        assert_eq!(
            mem.split_kv_residency_capped(3 << 20, Some(1 << 20)),
            (1 << 20, 2 << 20)
        );
        // A grant above capacity is clamped to the physical capacity.
        assert_eq!(
            mem.split_kv_residency_capped(10 << 20, Some(64 << 20)),
            (4 << 20, 6 << 20)
        );
        // No grant behaves exactly like the uncapped split.
        assert_eq!(
            mem.split_kv_residency_capped(3 << 20, None),
            mem.split_kv_residency(3 << 20)
        );
    }

    #[test]
    fn kv_overflow_costs_dram_energy() {
        let mem = MemorySubsystem::kelle_default();
        let no_overflow = mem.kv_read_cost(1 << 20, 0);
        let with_overflow = mem.kv_read_cost(1 << 20, 1 << 20);
        assert_eq!(no_overflow.dram_energy_j, 0.0);
        assert!(with_overflow.dram_energy_j > 0.0);
        assert!(with_overflow.time_s >= no_overflow.time_s);
    }

    #[test]
    fn edram_kv_reads_cheaper_than_sram_kv_reads() {
        let kelle = MemorySubsystem::kelle_default();
        let sram = MemorySubsystem::baseline_sram();
        let bytes = 1 << 20;
        assert!(
            kelle.kv_read_cost(bytes, 0).onchip_energy_j
                < sram.kv_read_cost(bytes, 0).onchip_energy_j
        );
    }

    #[test]
    fn migration_costs_rank_by_tier_distance() {
        let mem = MemorySubsystem::kelle_default();
        let bytes = 1 << 20;
        let demote = mem.kv_migration_cost(MemoryTier::Edram, MemoryTier::Dram, bytes);
        let deep = mem.kv_migration_cost(MemoryTier::Dram, MemoryTier::Nvme, bytes);
        // eDRAM→DRAM is DRAM-channel-bound; DRAM→NVMe is NVMe-bound and
        // slower/costlier still.
        assert!(demote.time_s > 0.0 && deep.time_s > demote.time_s);
        assert!(deep.dram_energy_j > demote.dram_energy_j);
        // The eDRAM side shows up as on-chip traffic; a DRAM↔NVMe move is
        // entirely off-chip.
        assert_eq!(demote.onchip_bytes, bytes);
        assert_eq!(demote.dram_bytes, bytes);
        assert_eq!(deep.onchip_bytes, 0);
        assert_eq!(deep.onchip_energy_j, 0.0);
        // Promotion mirrors demotion in this symmetric cost model.
        let promote = mem.kv_migration_cost(MemoryTier::Dram, MemoryTier::Edram, bytes);
        assert_eq!(promote.time_s, demote.time_s);
        assert_eq!(promote.dram_energy_j, demote.dram_energy_j);
    }

    #[test]
    #[should_panic(expected = "distinct tiers")]
    fn self_migration_cost_panics() {
        MemorySubsystem::kelle_default().kv_migration_cost(
            MemoryTier::Edram,
            MemoryTier::Edram,
            1024,
        );
    }

    #[test]
    fn halved_bandwidth_variant() {
        let mem = MemorySubsystem::kelle_halved_bandwidth();
        assert_eq!(mem.kv_banks.unwrap().total_banks, 16);
        assert_eq!(mem.kv_memory.capacity_bytes, 4 * 1024 * 1024);
        let full = MemorySubsystem::kelle_default();
        assert!(mem.kv_read_cost(1 << 22, 0).time_s > full.kv_read_cost(1 << 22, 0).time_s);
    }
}
