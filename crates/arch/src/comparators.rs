//! External accelerator comparators (Fig. 14).
//!
//! §8.2 compares Kelle against four systems that attack different parts of the
//! LLM serving pipeline:
//!
//! * **Jetson Orin** — an edge GPU running the model in FP8; the reference
//!   point of Fig. 14.
//! * **LLM.npu** — NPU offloading that accelerates the *pre-fill* stage by
//!   restructuring prompts/models; decode-stage KV traffic is untouched.
//! * **DynaX** — dynamic fine-grained structured sparsity (~90 % attention
//!   sparsity) that also mainly helps the compute-bound pre-fill stage.
//! * **COMET** — W4A4/KV4 quantization with high-performance mixed-precision
//!   kernels (configured here as W8 + 4-bit KV to match Kelle's storage
//!   budget, per §8.2), which shrinks KV traffic but has no dedicated KV
//!   management hardware.
//!
//! Each comparator is modelled as a set of first-order modifiers applied to
//! the same step-level traffic/compute accounting used for
//! [`Platform`](crate::Platform): an
//! effective memory bandwidth, a compute throughput, a pre-fill speedup
//! factor, a KV-bit width and an energy-per-byte/per-MAC scale.

use crate::platform::{EnergyBreakdown, PhaseMetrics, PlatformReport};
use crate::workload::InferenceWorkload;
use kelle_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Which external accelerator is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComparatorKind {
    /// NVIDIA Jetson Orin edge GPU (FP8).
    JetsonOrin,
    /// LLM.npu NPU-offloading system.
    LlmNpu,
    /// DynaX sparse-attention accelerator.
    DynaX,
    /// COMET mixed-precision (4-bit KV) GPU kernels.
    Comet,
}

impl ComparatorKind {
    /// All comparators in the order of Fig. 14.
    pub fn all() -> [ComparatorKind; 4] {
        [
            ComparatorKind::JetsonOrin,
            ComparatorKind::LlmNpu,
            ComparatorKind::DynaX,
            ComparatorKind::Comet,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ComparatorKind::JetsonOrin => "Jetson",
            ComparatorKind::LlmNpu => "LLM.npu",
            ComparatorKind::DynaX => "DynaX",
            ComparatorKind::Comet => "COMET",
        }
    }
}

/// First-order model of an external accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparator {
    /// Which system this models.
    pub kind: ComparatorKind,
    /// Effective memory bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Effective compute throughput in MACs per second.
    pub compute_macs_per_s: f64,
    /// Multiplicative speedup applied to the pre-fill phase only.
    pub prefill_speedup: f64,
    /// Fraction of attention MACs that survive sparsification (1.0 = dense).
    pub attention_density: f64,
    /// Weight precision in bits.
    pub weight_bits: u32,
    /// KV-cache precision in bits.
    pub kv_bits: u32,
    /// Energy per byte of memory traffic in joules.
    pub energy_per_byte_j: f64,
    /// Energy per MAC in joules.
    pub energy_per_mac_j: f64,
    /// Idle/system power in watts.
    pub system_power_w: f64,
}

impl Comparator {
    /// Builds the model for one of the compared systems.
    pub fn preset(kind: ComparatorKind) -> Self {
        match kind {
            // Jetson Orin NX class: ~102 GB/s LPDDR5, ~50 INT8 TOPS dense
            // usable for GEMM, FP8 weights, 15-25 W module power.
            ComparatorKind::JetsonOrin => Comparator {
                kind,
                bandwidth_bytes_per_s: 102.0e9,
                compute_macs_per_s: 25.0e12,
                prefill_speedup: 1.0,
                attention_density: 1.0,
                weight_bits: 8,
                kv_bits: 16,
                energy_per_byte_j: 450.0e-12,
                energy_per_mac_j: 1.2e-12,
                system_power_w: 15.0,
            },
            // LLM.npu: NPU offloading cuts pre-fill latency substantially but
            // leaves decode-time KV traffic untouched.
            ComparatorKind::LlmNpu => Comparator {
                kind,
                bandwidth_bytes_per_s: 102.0e9,
                compute_macs_per_s: 20.0e12,
                prefill_speedup: 3.0,
                attention_density: 1.0,
                weight_bits: 8,
                kv_bits: 16,
                energy_per_byte_j: 400.0e-12,
                energy_per_mac_j: 0.9e-12,
                system_power_w: 12.0,
            },
            // DynaX: 90 % attention sparsity accelerates score computation;
            // decode remains bandwidth-limited by weights + KV.
            ComparatorKind::DynaX => Comparator {
                kind,
                bandwidth_bytes_per_s: 102.0e9,
                compute_macs_per_s: 20.0e12,
                prefill_speedup: 2.2,
                attention_density: 0.1,
                weight_bits: 8,
                kv_bits: 16,
                energy_per_byte_j: 400.0e-12,
                energy_per_mac_j: 0.9e-12,
                system_power_w: 12.0,
            },
            // COMET: 4-bit KV cache and efficient mixed-precision kernels on a
            // GPU-class memory system.
            ComparatorKind::Comet => Comparator {
                kind,
                bandwidth_bytes_per_s: 102.0e9,
                compute_macs_per_s: 22.0e12,
                prefill_speedup: 1.3,
                attention_density: 1.0,
                weight_bits: 8,
                kv_bits: 4,
                energy_per_byte_j: 400.0e-12,
                energy_per_mac_j: 0.8e-12,
                system_power_w: 12.0,
            },
        }
    }

    /// Simulates a workload on this comparator, producing a report comparable
    /// with [`crate::Platform::simulate`] output.
    pub fn simulate(&self, model: &ModelConfig, workload: &InferenceWorkload) -> PlatformReport {
        let prefill = self.simulate_prefill(model, workload);
        let decode = self.simulate_decode(model, workload);
        PlatformReport {
            platform: self.kind.name().to_string(),
            workload: workload.name,
            prefill,
            decode,
        }
    }

    fn phase(&self, macs: f64, bytes: f64, extra_latency_scale: f64) -> PhaseMetrics {
        let t_mem = bytes / self.bandwidth_bytes_per_s;
        let t_compute = macs / self.compute_macs_per_s;
        let latency = t_mem.max(t_compute) * extra_latency_scale;
        let energy = EnergyBreakdown {
            rsa_j: macs * self.energy_per_mac_j,
            sfu_j: 0.0,
            weight_buffer_j: 0.0,
            kv_buffer_j: 0.0,
            refresh_j: 0.0,
            dram_j: bytes * self.energy_per_byte_j,
            static_j: self.system_power_w * latency,
        };
        PhaseMetrics {
            latency_s: latency,
            energy,
        }
    }

    fn simulate_prefill(&self, model: &ModelConfig, workload: &InferenceWorkload) -> PhaseMetrics {
        let batch = workload.batch as f64;
        let macs = model.prefill_macs(workload.context_len) as f64
            * batch
            * self.attention_density.max(0.5);
        let weight_bytes = model.decoder_weight_params() as f64 * f64::from(self.weight_bits) / 8.0;
        let kv_bytes = model.kv_bytes_total(workload.context_len, self.kv_bits) as f64 * batch;
        self.phase(macs, weight_bytes + kv_bytes, 1.0 / self.prefill_speedup)
    }

    fn simulate_decode(&self, model: &ModelConfig, workload: &InferenceWorkload) -> PhaseMetrics {
        let batch = workload.batch as f64;
        let weight_bytes = model.decoder_weight_params() as f64 * f64::from(self.weight_bits) / 8.0;
        let mut total = PhaseMetrics::default();
        for step in 0..workload.decode_len {
            let seq_len = workload.context_len + step + 1;
            let kv_bytes = model.kv_bytes_total(seq_len, self.kv_bits) as f64 * batch;
            let macs = model.decode_macs(seq_len) as f64 * batch;
            let step_metrics = self.phase(macs, weight_bytes + kv_bytes, 1.0);
            total.latency_s += step_metrics.latency_s;
            total.energy = total.energy.merged(&step_metrics.energy);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle_model::ModelKind;

    fn model() -> ModelConfig {
        ModelConfig::for_kind(ModelKind::Llama2_7b)
    }

    #[test]
    fn prefill_optimizers_beat_jetson_on_prefill_only() {
        let m = model();
        let w = InferenceWorkload::long_input(8192, 128);
        let jetson = Comparator::preset(ComparatorKind::JetsonOrin).simulate(&m, &w);
        let npu = Comparator::preset(ComparatorKind::LlmNpu).simulate(&m, &w);
        assert!(npu.prefill.latency_s < jetson.prefill.latency_s);
    }

    #[test]
    fn comet_reduces_decode_traffic() {
        let m = model();
        let w = InferenceWorkload::pg19();
        let jetson = Comparator::preset(ComparatorKind::JetsonOrin).simulate(&m, &w);
        let comet = Comparator::preset(ComparatorKind::Comet).simulate(&m, &w);
        assert!(comet.decode.latency_s < jetson.decode.latency_s);
        assert!(comet.total_energy_j() < jetson.total_energy_j());
    }

    #[test]
    fn all_comparators_produce_reports() {
        let m = model();
        let w = InferenceWorkload::lambada();
        for kind in ComparatorKind::all() {
            let report = Comparator::preset(kind).simulate(&m, &w);
            assert!(report.total_latency_s() > 0.0, "{:?}", kind);
            assert!(report.total_energy_j() > 0.0, "{:?}", kind);
        }
    }

    #[test]
    fn names() {
        assert_eq!(ComparatorKind::JetsonOrin.name(), "Jetson");
        assert_eq!(ComparatorKind::Comet.name(), "COMET");
    }
}
