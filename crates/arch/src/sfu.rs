//! The special-function unit (SFU, §5).
//!
//! Non-linear operations — softmax (Softermax-style online max), activation
//! functions, normalization and positional embeddings — are handled by a
//! LUT-based SFU.  Their cost grows with the number of elements processed,
//! which for the attention softmax means the current context length.

use serde::{Deserialize, Serialize};

/// Cost model of the LUT-based special-function unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecialFunctionUnit {
    /// Elements processed per second (softmax/normalization throughput).
    pub elements_per_s: f64,
    /// Energy per processed element in joules.
    pub energy_per_element_j: f64,
    /// Idle/leakage power in watts.
    pub leakage_w: f64,
}

impl SpecialFunctionUnit {
    /// The Kelle SFU: sized to its reported 7 % area / 13 % power share of the
    /// 6.52 W accelerator, processing 16 elements per cycle at 1 GHz.
    pub fn kelle_default() -> Self {
        SpecialFunctionUnit {
            elements_per_s: 16.0e9,
            energy_per_element_j: 3.0e-12,
            leakage_w: 0.05,
        }
    }

    /// Number of SFU elements processed in one decoding step: the softmax over
    /// `context` attention scores for each of `heads` heads and the
    /// normalization/activation work proportional to the channel and FFN
    /// dimensions.
    pub fn elements_per_decode_step(
        &self,
        context: usize,
        heads: usize,
        channels: usize,
        ffn_dim: usize,
    ) -> u64 {
        (heads * context + 2 * channels + ffn_dim) as u64
    }

    /// Time in seconds to process `elements` elements.
    pub fn time_s(&self, elements: u64) -> f64 {
        elements as f64 / self.elements_per_s
    }

    /// Dynamic energy in joules to process `elements` elements.
    pub fn energy_j(&self, elements: u64) -> f64 {
        elements as f64 * self.energy_per_element_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_grow_with_context() {
        let sfu = SpecialFunctionUnit::kelle_default();
        let short = sfu.elements_per_decode_step(128, 32, 4096, 11_008);
        let long = sfu.elements_per_decode_step(8192, 32, 4096, 11_008);
        assert!(long > short);
    }

    #[test]
    fn cost_is_linear() {
        let sfu = SpecialFunctionUnit::kelle_default();
        assert!((sfu.time_s(2000) - 2.0 * sfu.time_s(1000)).abs() < 1e-15);
        assert!((sfu.energy_j(2000) - 2.0 * sfu.energy_j(1000)).abs() < 1e-15);
    }

    #[test]
    fn softmax_cost_is_small_relative_to_matmul() {
        // The SFU must not dominate a decode step: 32 heads x 8192 context is
        // ~0.26M elements, i.e. ~16 us -- small next to DRAM weight streaming.
        let sfu = SpecialFunctionUnit::kelle_default();
        let elements = sfu.elements_per_decode_step(8192, 32, 4096, 11_008);
        assert!(sfu.time_s(elements) < 1e-3);
    }
}
