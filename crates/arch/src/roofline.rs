//! Roofline analysis of recomputation (Fig. 16a).
//!
//! Recomputing KV vectors trades DRAM traffic for MAC operations, i.e. it
//! moves the decode kernel to the right on a roofline plot (higher operational
//! intensity).  A moderate amount of recomputation lifts performance because
//! the kernel is deep in the memory-bound region; excessive recomputation
//! pushes it past the ridge point where the RSA becomes the bottleneck — the
//! "Over Recomp" curve of Fig. 16a.

use crate::systolic::SystolicArraySpec;
use kelle_edram::DramSpec;
use serde::{Deserialize, Serialize};

/// A point on the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operational intensity in MACs per byte of off-chip traffic.
    pub intensity_macs_per_byte: f64,
    /// Attained performance in MACs per second.
    pub performance_macs_per_s: f64,
    /// Whether the point is compute-bound (true) or memory-bound (false).
    pub compute_bound: bool,
}

/// Roofline model built from the array's peak throughput and the DRAM
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Peak compute throughput in MACs per second.
    pub peak_macs_per_s: f64,
    /// Off-chip bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl RooflineModel {
    /// Builds the roofline for a compute array over a DRAM channel.
    pub fn new(compute: &SystolicArraySpec, dram: &DramSpec) -> Self {
        RooflineModel {
            peak_macs_per_s: compute.peak_macs_per_s(),
            bandwidth_bytes_per_s: dram.bandwidth_bytes_per_s,
        }
    }

    /// Operational intensity at which the kernel transitions from memory-bound
    /// to compute-bound (the ridge point).
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_macs_per_s / self.bandwidth_bytes_per_s
    }

    /// Attainable performance at a given operational intensity.
    pub fn attainable_macs_per_s(&self, intensity: f64) -> f64 {
        (intensity * self.bandwidth_bytes_per_s).min(self.peak_macs_per_s)
    }

    /// Evaluates a kernel described by its MACs and off-chip bytes.
    pub fn evaluate(&self, macs: u64, dram_bytes: u64) -> RooflinePoint {
        let intensity = if dram_bytes == 0 {
            f64::INFINITY
        } else {
            macs as f64 / dram_bytes as f64
        };
        let performance = self.attainable_macs_per_s(intensity.min(1e12));
        RooflinePoint {
            intensity_macs_per_byte: intensity,
            performance_macs_per_s: performance,
            compute_bound: intensity >= self.ridge_intensity(),
        }
    }

    /// Evaluates the decode kernel under a recomputation setting: a fraction
    /// `recompute_fraction` of the KV working set is recomputed (removing its
    /// DRAM traffic but adding `macs_per_recomputed_byte` MACs per byte
    /// saved).
    pub fn evaluate_recompute(
        &self,
        base_macs: u64,
        base_dram_bytes: u64,
        recompute_fraction: f64,
        macs_per_recomputed_byte: f64,
    ) -> RooflinePoint {
        let saved_bytes = (base_dram_bytes as f64 * recompute_fraction.clamp(0.0, 1.0)) as u64;
        let extra_macs = (saved_bytes as f64 * macs_per_recomputed_byte) as u64;
        self.evaluate(base_macs + extra_macs, base_dram_bytes - saved_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RooflineModel {
        RooflineModel::new(&SystolicArraySpec::kelle_32x32(), &DramSpec::lpddr4_16gb())
    }

    #[test]
    fn ridge_point_is_peak_over_bandwidth() {
        let m = model();
        assert!((m.ridge_intensity() - m.peak_macs_per_s / 64.0e9).abs() < 1e-6);
    }

    #[test]
    fn decode_kernel_is_memory_bound_without_recompute() {
        let m = model();
        // Decode: ~7e9 MACs per step vs ~7 GB traffic -> intensity ~1.
        let p = m.evaluate(7_000_000_000, 7_000_000_000);
        assert!(!p.compute_bound);
        assert!(p.performance_macs_per_s < m.peak_macs_per_s);
    }

    #[test]
    fn moderate_recompute_improves_performance() {
        let m = model();
        let base = m.evaluate(7_000_000_000, 7_000_000_000);
        let recomp = m.evaluate_recompute(7_000_000_000, 7_000_000_000, 0.3, 2.0);
        assert!(recomp.performance_macs_per_s > base.performance_macs_per_s);
    }

    #[test]
    fn excessive_recompute_becomes_compute_bound() {
        let m = model();
        let over = m.evaluate_recompute(7_000_000_000, 7_000_000_000, 0.99, 600.0);
        assert!(over.compute_bound);
        // Performance saturates at the peak; it cannot exceed it.
        assert!(over.performance_macs_per_s <= m.peak_macs_per_s * 1.0001);
    }

    #[test]
    fn zero_traffic_is_compute_bound() {
        let m = model();
        let p = m.evaluate(1_000_000, 0);
        assert!(p.compute_bound);
        assert_eq!(p.performance_macs_per_s, m.peak_macs_per_s);
    }
}
