//! End-to-end platform models and the step-level simulation (§8.1).
//!
//! A [`Platform`] bundles a compute array, a memory subsystem, a KV-cache
//! policy, a refresh policy, a scheduler and the systolic evictor, and can
//! simulate an [`InferenceWorkload`] for a given [`ModelConfig`].  The five
//! platforms of Fig. 13 are provided as presets:
//!
//! | preset | storage | cache policy | refresh | scheduler | evictor |
//! |---|---|---|---|---|---|
//! | `Original+SRAM`  | 4 MB unified SRAM, 24×24 array | full | — | baseline | — |
//! | `Original+eDRAM` | Kelle memories, 32×32 array | full | conservative | baseline | — |
//! | `AEP+SRAM`       | SRAM baseline | eviction only | — | baseline | absent (serial scan) |
//! | `AERP+SRAM`      | SRAM baseline | eviction + recompute | — | baseline | absent |
//! | `Kelle+eDRAM`    | Kelle memories | AERP | 2DRP | Kelle | present |
//!
//! The simulation walks every decoding step, so sequence-length-dependent
//! effects (KV growth, eviction saturation at `N'`, eDRAM overflow to DRAM)
//! appear naturally in the totals.

use crate::evictor::SystolicEvictor;
use crate::memory::MemorySubsystem;
use crate::scheduler::{SchedulerKind, StepTiming};
use crate::sfu::SpecialFunctionUnit;
use crate::systolic::SystolicArraySpec;
use crate::workload::InferenceWorkload;
use kelle_edram::{EdramController, RefreshPolicy, RetentionModel};
use kelle_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Which KV-cache management algorithm the platform runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// Full (uncompressed) KV cache.
    FullCache,
    /// Attention-based eviction only (the AEP baseline).
    Eviction,
    /// Attention-based eviction + recomputation (AERP).
    EvictionRecompute {
        /// Fraction of retained tokens stored as input vectors instead of KV
        /// vectors (the *popular* tokens of §4.1.2).  Those tokens occupy half
        /// the storage and half the read traffic, at the price of re-projecting
        /// them through `W_K`/`W_V` when used.
        popular_fraction: f64,
        /// Fraction of the *off-chip* KV fetch traffic that is replaced by
        /// on-the-fly recomputation instead of a DRAM read (§8.3.2's
        /// "three are loaded and one is recomputed in parallel" ⇒ 0.25).
        /// Values past ~0.25 push the decode kernel into the compute-bound
        /// regime (the "Over Recomp" curve of Fig. 16a).
        dram_replacement: f64,
    },
}

/// MAC operations spent to recompute one byte of KV data that would otherwise
/// have been fetched from DRAM.  Calibrated from §8.3.2's example — recomputing
/// one KV vector takes ≈ 3.2 µs on the RSA versus ≈ 1.1 µs to fetch it from
/// DRAM — i.e. recomputation is ≈ 3× slower per byte than the DRAM channel,
/// which at a 64 GB/s channel and ~1 TMAC/s array is ≈ 48 MACs per byte.
const RECOMPUTE_MACS_PER_BYTE: f64 = 48.0;

impl CachePolicyKind {
    /// The default AERP configuration used by the hardware evaluation.
    pub fn aerp_default() -> Self {
        CachePolicyKind::EvictionRecompute {
            popular_fraction: 0.35,
            dram_replacement: 0.25,
        }
    }

    /// Number of tokens whose data is retained per layer when the sequence
    /// length is `seq_len` and the per-head budget is `n_prime`.
    pub fn resident_tokens(&self, seq_len: usize, n_prime: Option<usize>) -> usize {
        match self {
            CachePolicyKind::FullCache => seq_len,
            _ => n_prime.map_or(seq_len, |n| seq_len.min(n)),
        }
    }

    /// Average stored bytes per retained token per layer.
    ///
    /// A token stored as KV costs `2 × kv_channels` elements; a popular token
    /// stored as its input vector costs `channels` elements (§4.1.2).
    pub fn bytes_per_token_per_layer(&self, model: &ModelConfig, kv_bits: u32) -> f64 {
        let kv_channels = model.kv_heads * model.head_dim();
        let kv_cost = (2 * kv_channels) as f64 * f64::from(kv_bits) / 8.0;
        match self {
            CachePolicyKind::FullCache | CachePolicyKind::Eviction => kv_cost,
            CachePolicyKind::EvictionRecompute {
                popular_fraction, ..
            } => {
                let x_cost = model.channels as f64 * f64::from(kv_bits) / 8.0;
                (1.0 - popular_fraction) * kv_cost + popular_fraction * x_cost
            }
        }
    }

    /// Splits the per-step off-chip KV traffic into (bytes actually fetched
    /// from DRAM, extra recomputation MACs) under this policy.
    ///
    /// `max_replacement` caps the replaced fraction at the level the compute
    /// array can actually hide behind the remaining DRAM fetches (the
    /// balance point of §8.3.2's load-vs-recompute overlap); the Kelle
    /// scheduler never recomputes more than it can hide, so the effective
    /// fraction is the smaller of the configured and the balanced value.
    pub fn apply_recompute(&self, overflow_bytes: u64, max_replacement: f64) -> (u64, u64) {
        match self {
            CachePolicyKind::EvictionRecompute {
                dram_replacement, ..
            } => {
                let rho = dram_replacement
                    .clamp(0.0, 1.0)
                    .min(max_replacement.max(0.0));
                let replaced = (overflow_bytes as f64 * rho) as u64;
                let macs = (replaced as f64 * RECOMPUTE_MACS_PER_BYTE) as u64;
                (overflow_bytes - replaced, macs)
            }
            _ => (overflow_bytes, 0),
        }
    }

    /// The replacement fraction at which recomputation time exactly matches
    /// the remaining DRAM fetch time, for an array with effective throughput
    /// `macs_per_s` over a channel of `dram_bytes_per_s`.
    pub fn balanced_replacement(macs_per_s: f64, dram_bytes_per_s: f64) -> f64 {
        1.0 / (1.0 + RECOMPUTE_MACS_PER_BYTE * dram_bytes_per_s / macs_per_s)
    }

    /// Whether the policy performs eviction bookkeeping (and therefore needs
    /// either the systolic evictor or a serial scan).
    pub fn needs_eviction_pass(&self) -> bool {
        !matches!(self, CachePolicyKind::FullCache)
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CachePolicyKind::FullCache => "full",
            CachePolicyKind::Eviction => "aep",
            CachePolicyKind::EvictionRecompute { .. } => "aerp",
        }
    }
}

/// Energy decomposition of a simulated phase, matching the categories of the
/// paper's breakdown plots.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Systolic-array dynamic energy.
    pub rsa_j: f64,
    /// Special-function-unit energy.
    pub sfu_j: f64,
    /// Weight-buffer (SRAM) access energy.
    pub weight_buffer_j: f64,
    /// KV-memory access energy (SRAM or eDRAM).
    pub kv_buffer_j: f64,
    /// eDRAM refresh energy.
    pub refresh_j: f64,
    /// Off-chip DRAM access energy.
    pub dram_j: f64,
    /// Leakage / background energy of all components.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.rsa_j
            + self.sfu_j
            + self.weight_buffer_j
            + self.kv_buffer_j
            + self.refresh_j
            + self.dram_j
            + self.static_j
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            rsa_j: self.rsa_j + other.rsa_j,
            sfu_j: self.sfu_j + other.sfu_j,
            weight_buffer_j: self.weight_buffer_j + other.weight_buffer_j,
            kv_buffer_j: self.kv_buffer_j + other.kv_buffer_j,
            refresh_j: self.refresh_j + other.refresh_j,
            dram_j: self.dram_j + other.dram_j,
            static_j: self.static_j + other.static_j,
        }
    }

    /// Fraction of total energy spent on eDRAM refresh.
    pub fn refresh_share(&self) -> f64 {
        let total = self.total_j();
        if total > 0.0 {
            self.refresh_j / total
        } else {
            0.0
        }
    }

    /// Fraction of total energy spent on DRAM traffic.
    pub fn dram_share(&self) -> f64 {
        let total = self.total_j();
        if total > 0.0 {
            self.dram_j / total
        } else {
            0.0
        }
    }
}

/// Latency and energy of one simulated phase (pre-fill or decode).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Result of simulating one workload on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Platform name.
    pub platform: String,
    /// Workload name.
    pub workload: &'static str,
    /// Pre-fill phase metrics.
    pub prefill: PhaseMetrics,
    /// Decode phase metrics.
    pub decode: PhaseMetrics,
}

impl PlatformReport {
    /// End-to-end latency in seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.prefill.latency_s + self.decode.latency_s
    }

    /// End-to-end energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.prefill.energy.total_j() + self.decode.energy.total_j()
    }

    /// Combined energy breakdown.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.prefill.energy.merged(&self.decode.energy)
    }

    /// Speedup of this platform relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &PlatformReport) -> f64 {
        baseline.total_latency_s() / self.total_latency_s()
    }

    /// Energy-efficiency gain relative to `baseline` (>1 means less energy).
    pub fn energy_efficiency_vs(&self, baseline: &PlatformReport) -> f64 {
        baseline.total_energy_j() / self.total_energy_j()
    }
}

/// The evaluated platform presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Full KV cache on the area-matched SRAM system.
    OriginalSram,
    /// Full KV cache on the eDRAM-based Kelle hardware (no algorithmic help).
    OriginalEdram,
    /// Attention-based eviction (no recomputation) on the SRAM system.
    AepSram,
    /// AERP on the SRAM system.
    AerpSram,
    /// The full Kelle system: AERP + 2DRP + Kelle scheduler + systolic evictor
    /// on the eDRAM hardware.
    KelleEdram,
}

impl PlatformKind {
    /// All five platforms in the order of Fig. 13.
    pub fn all() -> [PlatformKind; 5] {
        [
            PlatformKind::OriginalSram,
            PlatformKind::OriginalEdram,
            PlatformKind::AepSram,
            PlatformKind::AerpSram,
            PlatformKind::KelleEdram,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::OriginalSram => "Original+SRAM",
            PlatformKind::OriginalEdram => "Original+eDRAM",
            PlatformKind::AepSram => "AEP+SRAM",
            PlatformKind::AerpSram => "AERP+SRAM",
            PlatformKind::KelleEdram => "Kelle+eDRAM",
        }
    }
}

/// A fully configured hardware platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: String,
    /// Compute array.
    pub compute: SystolicArraySpec,
    /// Special-function unit.
    pub sfu: SpecialFunctionUnit,
    /// Memory subsystem.
    pub memory: MemorySubsystem,
    /// KV-cache policy.
    pub cache_policy: CachePolicyKind,
    /// eDRAM refresh policy (ignored when the KV memory is SRAM).
    pub refresh_policy: RefreshPolicy,
    /// eDRAM retention model.
    pub retention: RetentionModel,
    /// Computation schedule.
    pub scheduler: SchedulerKind,
    /// Systolic evictor configuration.
    pub evictor: SystolicEvictor,
    /// Weight precision in bits.
    pub weight_bits: u32,
    /// Activation precision in bits.
    pub act_bits: u32,
    /// KV-cache precision in bits.
    pub kv_bits: u32,
}

impl Platform {
    /// Builds one of the five evaluation presets.
    pub fn preset(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::OriginalSram => Platform {
                name: kind.name().to_string(),
                compute: SystolicArraySpec::baseline_24x24(),
                sfu: SpecialFunctionUnit::kelle_default(),
                memory: MemorySubsystem::baseline_sram(),
                cache_policy: CachePolicyKind::FullCache,
                refresh_policy: RefreshPolicy::Conservative,
                retention: RetentionModel::default(),
                scheduler: SchedulerKind::Baseline,
                evictor: SystolicEvictor::absent(),
                weight_bits: 8,
                act_bits: 16,
                kv_bits: 16,
            },
            PlatformKind::OriginalEdram => Platform {
                name: kind.name().to_string(),
                compute: SystolicArraySpec::kelle_32x32(),
                sfu: SpecialFunctionUnit::kelle_default(),
                memory: MemorySubsystem::kelle_default(),
                cache_policy: CachePolicyKind::FullCache,
                refresh_policy: RefreshPolicy::Conservative,
                retention: RetentionModel::default(),
                scheduler: SchedulerKind::Baseline,
                evictor: SystolicEvictor::absent(),
                weight_bits: 8,
                act_bits: 16,
                kv_bits: 16,
            },
            PlatformKind::AepSram => Platform {
                name: kind.name().to_string(),
                compute: SystolicArraySpec::baseline_24x24(),
                sfu: SpecialFunctionUnit::kelle_default(),
                memory: MemorySubsystem::baseline_sram(),
                cache_policy: CachePolicyKind::Eviction,
                refresh_policy: RefreshPolicy::Conservative,
                retention: RetentionModel::default(),
                scheduler: SchedulerKind::Baseline,
                evictor: SystolicEvictor::absent(),
                weight_bits: 8,
                act_bits: 16,
                kv_bits: 16,
            },
            PlatformKind::AerpSram => Platform {
                name: kind.name().to_string(),
                compute: SystolicArraySpec::baseline_24x24(),
                sfu: SpecialFunctionUnit::kelle_default(),
                memory: MemorySubsystem::baseline_sram(),
                cache_policy: CachePolicyKind::aerp_default(),
                refresh_policy: RefreshPolicy::Conservative,
                retention: RetentionModel::default(),
                scheduler: SchedulerKind::Baseline,
                evictor: SystolicEvictor::absent(),
                weight_bits: 8,
                act_bits: 16,
                kv_bits: 16,
            },
            PlatformKind::KelleEdram => Platform {
                name: kind.name().to_string(),
                compute: SystolicArraySpec::kelle_32x32(),
                sfu: SpecialFunctionUnit::kelle_default(),
                memory: MemorySubsystem::kelle_default(),
                cache_policy: CachePolicyKind::aerp_default(),
                refresh_policy: RefreshPolicy::two_dimensional_default(),
                retention: RetentionModel::default(),
                scheduler: SchedulerKind::Kelle,
                evictor: SystolicEvictor::kelle_default(),
                weight_bits: 8,
                act_bits: 16,
                kv_bits: 16,
            },
        }
    }

    /// Builds all five presets.
    pub fn evaluation_set() -> Vec<Platform> {
        PlatformKind::all()
            .into_iter()
            .map(Platform::preset)
            .collect()
    }

    /// Simulates a workload on this platform.
    ///
    /// `n_prime` is the KV-cache budget used by eviction policies (ignored by
    /// the full-cache platforms).
    pub fn simulate(
        &self,
        model: &ModelConfig,
        workload: &InferenceWorkload,
        n_prime: Option<usize>,
    ) -> PlatformReport {
        let prefill = self.simulate_prefill(model, workload, n_prime);
        let decode = self.simulate_decode(model, workload, n_prime);
        PlatformReport {
            platform: self.name.clone(),
            workload: workload.name,
            prefill,
            decode,
        }
    }

    /// Total leakage/background power of the platform in watts.
    fn static_power_w(&self) -> f64 {
        self.compute.leakage_w
            + self.sfu.leakage_w
            + self.memory.onchip_leakage_w()
            + self.memory.dram.background_power_w
            + if self.evictor.present {
                self.evictor.power_w
            } else {
                0.0
            }
    }

    /// KV working-set bytes per sequence when `tokens` tokens are retained.
    fn kv_bytes_per_seq(&self, model: &ModelConfig, tokens: usize) -> f64 {
        self.cache_policy
            .bytes_per_token_per_layer(model, self.kv_bits)
            * tokens as f64
            * model.layers as f64
    }

    /// Full-scale KV footprint in bytes of a request retaining `tokens`
    /// tokens across `batch` sequences under this platform's cache policy.
    /// This is the quantity a shared-capacity ledger
    /// ([`kelle_edram::CapacityLedger`]) accounts per session: the same
    /// per-token byte cost the step simulation charges, so admission control
    /// and the cost model can never disagree about how big a request is.
    pub fn kv_footprint_bytes(&self, model: &ModelConfig, tokens: usize, batch: usize) -> u64 {
        (self.kv_bytes_per_seq(model, tokens) * batch as f64) as u64
    }

    /// Simulates the pre-filling phase (all context tokens processed in
    /// parallel).
    fn simulate_prefill(
        &self,
        model: &ModelConfig,
        workload: &InferenceWorkload,
        _n_prime: Option<usize>,
    ) -> PhaseMetrics {
        let batch = workload.batch as u64;
        let context = workload.context_len;
        // Defensive clamp: the builder enforces reused <= context, but the
        // field is public and an out-of-range value must not wrap the
        // subtractions below.
        let reused = workload.reused_context_len.min(context);
        let new_tokens = context - reused;

        // Compute: the *marginal* causal pre-fill — extending an already
        // processed prefix of `reused` tokens to the full context.  With no
        // reuse (`reused == 0`) this is the full causal pre-fill.
        let macs = (model.prefill_macs(context) - model.prefill_macs(reused)) * batch;
        let t_compute = self.compute.matmul_time_s(macs, new_tokens.clamp(1, 1024));
        let e_compute = self.compute.matmul_energy_j(macs);

        // Weights stream from DRAM once for the whole pre-fill (weight reuse
        // across the context dimension and the batch).
        let weight_bytes = model.decoder_weight_params() * u64::from(self.weight_bits) / 8;
        let weight_cost = self.memory.weight_stream_cost(weight_bytes);

        // KV written only for the new context tokens of every sequence; the
        // reused prefix already occupies the on-chip KV memory, so the new
        // writes get whatever residency remains *after* the prefix.
        let kv_total_bytes = (self.kv_bytes_per_seq(model, context) * batch as f64) as u64;
        let kv_reused_bytes = (self.kv_bytes_per_seq(model, reused) * batch as f64) as u64;
        let kv_write_bytes = kv_total_bytes.saturating_sub(kv_reused_bytes);
        let (resident_total, _) = self
            .memory
            .split_kv_residency_capped(kv_total_bytes, workload.kv_capacity_bytes);
        let (resident_reused, _) = self
            .memory
            .split_kv_residency_capped(kv_reused_bytes, workload.kv_capacity_bytes);
        let written_resident = resident_total.saturating_sub(resident_reused);
        let overflow = kv_write_bytes.saturating_sub(written_resident);
        let kv_cost = self.memory.kv_write_cost(written_resident, overflow);

        // Refresh must keep the *whole* context alive, reused prefix included.
        let resident = resident_total;

        // SFU work: softmax over the new rows of the causal score matrix.
        let sfu_elements = (model.heads * (context * context - reused * reused) / 2) as u64 * batch
            + (2 * model.channels + model.ffn_dim) as u64 * new_tokens as u64 * batch;
        let t_sfu = self.sfu.time_s(sfu_elements);
        let e_sfu = self.sfu.energy_j(sfu_elements);

        // Pre-fill is compute-bound on edge systems; memory transfers overlap
        // with the long GEMMs.
        let memory_time = self
            .scheduler
            .memory_time_s(weight_cost.time_s, kv_cost.time_s + t_sfu);
        let latency = t_compute.max(memory_time);

        // eDRAM refresh during pre-fill: KV already resident must be kept alive.
        let refresh_j = if self.memory.kv_is_edram() {
            let controller =
                EdramController::new(self.memory.kv_memory, self.retention, self.refresh_policy);
            let per_group = resident / 4;
            controller
                .resident_refresh([per_group; 4], latency)
                .energy_j
        } else {
            0.0
        };

        PhaseMetrics {
            latency_s: latency,
            energy: EnergyBreakdown {
                rsa_j: e_compute + self.compute.leakage_energy_j(latency),
                sfu_j: e_sfu,
                weight_buffer_j: weight_cost.onchip_energy_j,
                kv_buffer_j: kv_cost.onchip_energy_j,
                refresh_j,
                dram_j: weight_cost.dram_energy_j + kv_cost.dram_energy_j,
                static_j: self.static_power_w() * latency,
            },
        }
    }

    /// Simulates the auto-regressive decode phase step by step.
    fn simulate_decode(
        &self,
        model: &ModelConfig,
        workload: &InferenceWorkload,
        n_prime: Option<usize>,
    ) -> PhaseMetrics {
        let batch = workload.batch as u64;
        let weight_bytes = model.decoder_weight_params() * u64::from(self.weight_bits) / 8;
        let mut total = PhaseMetrics::default();

        let controller =
            EdramController::new(self.memory.kv_memory, self.retention, self.refresh_policy);

        for step in 0..workload.decode_len {
            let seq_len = workload.context_len + step + 1;
            let resident_tokens = self.cache_policy.resident_tokens(seq_len, n_prime);

            // --- Traffic ---
            let kv_bytes_total =
                (self.kv_bytes_per_seq(model, resident_tokens) * batch as f64) as u64;
            // Batch-level residency: under shared-capacity arbitration this
            // workload only gets its granted slice of the KV memory, so the
            // remainder of its working set is fetched at DRAM cost.
            let (kv_resident, kv_overflow) = self
                .memory
                .split_kv_residency_capped(kv_bytes_total, workload.kv_capacity_bytes);
            // AERP replaces part of the off-chip KV fetches with on-the-fly
            // recomputation from on-chip input vectors (§8.3.2): the
            // recomputation runs on the RSA *in parallel with* the remaining
            // DRAM fetches, so the KV path takes the slower of the two and the
            // replaced share is capped at what the array can hide.
            let effective_macs_per_s =
                self.compute.peak_macs_per_s() * self.compute.utilization(self.compute.rows);
            let balanced = CachePolicyKind::balanced_replacement(
                effective_macs_per_s,
                self.memory.dram.bandwidth_bytes_per_s,
            );
            let (kv_dram_fetch, recompute_macs) =
                self.cache_policy.apply_recompute(kv_overflow, balanced);
            let kv_cost = self.memory.kv_read_cost(kv_resident, kv_dram_fetch);
            // Recomputation is a dense matrix-matrix operation and runs at
            // full array utilisation.
            let t_recompute = self
                .compute
                .matmul_time_s(recompute_macs, self.compute.rows);
            let kv_path_time = kv_cost.time_s.max(t_recompute);
            let weight_cost = self.memory.weight_stream_cost(weight_bytes);

            // --- Compute ---
            let macs = model.decode_macs(resident_tokens) * batch;
            let t_compute = self.compute.matmul_time_s(macs, workload.batch);
            let e_compute = self.compute.matmul_energy_j(macs + recompute_macs);

            // --- SFU ---
            let sfu_elements = self.sfu.elements_per_decode_step(
                resident_tokens,
                model.heads,
                model.channels,
                model.ffn_dim,
            ) * batch;
            let t_sfu = self.sfu.time_s(sfu_elements);
            let e_sfu = self.sfu.energy_j(sfu_elements);

            // --- Eviction bookkeeping ---
            let (t_evict, e_evict_extra) = if self.cache_policy.needs_eviction_pass() {
                let lat = self
                    .evictor
                    .eviction_latency_s(resident_tokens, model.heads);
                (lat, 0.0)
            } else {
                (0.0, 0.0)
            };

            // --- Step latency ---
            let memory_time = self
                .scheduler
                .memory_time_s(weight_cost.time_s, kv_path_time + t_sfu);
            let exposed_compute =
                (t_compute - self.scheduler.compute_overlap() * memory_time).max(0.0);
            let step_latency = memory_time + exposed_compute + t_evict;

            // --- Eviction energy ---
            let e_evict = if self.cache_policy.needs_eviction_pass() {
                self.evictor
                    .eviction_energy_j(resident_tokens, model.heads, step_latency)
                    + e_evict_extra
            } else {
                0.0
            };

            // --- Refresh energy ---
            let refresh_j = if self.memory.kv_is_edram() {
                // Resident KV data must be kept alive for the whole step.
                let per_group = kv_resident / 4;
                let resident = controller
                    .resident_refresh([per_group; 4], step_latency)
                    .energy_j;
                // Transient activations (X, Q, K, V) live for the schedule's
                // lifetime in the activation eDRAM.
                let timing = StepTiming {
                    t_weight_s: weight_cost.time_s / 3.0,
                    t_kv_s: kv_cost.time_s / 2.0,
                };
                let act_bytes = (model.channels as u64 * u64::from(self.act_bits) / 8) * 4 * batch;
                let lifetime = self.scheduler.activation_lifetime_s(timing);
                let transient = controller.transient_refresh(act_bytes, lifetime).energy_j;
                resident + transient
            } else {
                0.0
            };

            total.latency_s += step_latency;
            total.energy = total.energy.merged(&EnergyBreakdown {
                rsa_j: e_compute + self.compute.leakage_energy_j(step_latency) + e_evict,
                sfu_j: e_sfu,
                weight_buffer_j: weight_cost.onchip_energy_j,
                kv_buffer_j: kv_cost.onchip_energy_j,
                refresh_j,
                dram_j: weight_cost.dram_energy_j + kv_cost.dram_energy_j,
                static_j: self.static_power_w() * step_latency,
            });
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle_model::ModelKind;

    fn model() -> ModelConfig {
        ModelConfig::for_kind(ModelKind::Llama2_7b)
    }

    fn simulate(kind: PlatformKind, workload: InferenceWorkload) -> PlatformReport {
        Platform::preset(kind).simulate(&model(), &workload, Some(2048))
    }

    #[test]
    fn kelle_beats_original_sram_on_long_decodes() {
        let workload = InferenceWorkload::pg19();
        let baseline = simulate(PlatformKind::OriginalSram, workload);
        let kelle = simulate(PlatformKind::KelleEdram, workload);
        let speedup = kelle.speedup_vs(&baseline);
        let energy = kelle.energy_efficiency_vs(&baseline);
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(energy > 2.0, "energy efficiency {energy}");
    }

    #[test]
    fn platform_ordering_matches_paper() {
        // Fig. 13: Kelle+eDRAM > AERP+SRAM > AEP+SRAM > Original+SRAM in both
        // speedup and energy efficiency on the long workloads.
        let workload = InferenceWorkload::qasper();
        let orig = simulate(PlatformKind::OriginalSram, workload);
        let aep = simulate(PlatformKind::AepSram, workload);
        let aerp = simulate(PlatformKind::AerpSram, workload);
        let kelle = simulate(PlatformKind::KelleEdram, workload);
        assert!(aep.speedup_vs(&orig) > 1.0);
        assert!(aerp.speedup_vs(&orig) >= aep.speedup_vs(&orig));
        assert!(kelle.speedup_vs(&orig) > aerp.speedup_vs(&orig));
        assert!(aep.energy_efficiency_vs(&orig) > 1.0);
        assert!(kelle.energy_efficiency_vs(&orig) > aerp.energy_efficiency_vs(&orig));
    }

    #[test]
    fn original_edram_wastes_energy_on_refresh() {
        // Fig. 13 / §8.1.3: without algorithmic help, the conservative 45 us
        // refresh makes Original+eDRAM *less* energy-efficient than
        // Original+SRAM even though it can be faster.
        let workload = InferenceWorkload::triviaqa();
        let sram = simulate(PlatformKind::OriginalSram, workload);
        let edram = simulate(PlatformKind::OriginalEdram, workload);
        assert!(edram.energy_efficiency_vs(&sram) < 1.0);
        assert!(edram.total_energy().refresh_share() > 0.05);
    }

    #[test]
    fn speedup_grows_with_decode_length() {
        // §8.1.2: the gap grows as the decoding sequence gets longer.
        let short = InferenceWorkload::lambada();
        let long = InferenceWorkload::pg19();
        let s_short = simulate(PlatformKind::KelleEdram, short)
            .speedup_vs(&simulate(PlatformKind::OriginalSram, short));
        let s_long = simulate(PlatformKind::KelleEdram, long)
            .speedup_vs(&simulate(PlatformKind::OriginalSram, long));
        assert!(s_long > s_short);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let workload = InferenceWorkload::lambada();
        let report = simulate(PlatformKind::KelleEdram, workload);
        let total = report.total_energy();
        assert!((total.total_j() - report.total_energy_j()).abs() < 1e-9);
        assert!(report.total_latency_s() > 0.0);
        assert!(total.dram_j > 0.0);
        assert!(total.rsa_j > 0.0);
    }

    #[test]
    fn smaller_budget_is_cheaper() {
        let workload = InferenceWorkload::pg19();
        let platform = Platform::preset(PlatformKind::KelleEdram);
        let small = platform.simulate(&model(), &workload, Some(1024));
        let large = platform.simulate(&model(), &workload, Some(8192));
        assert!(small.total_energy_j() < large.total_energy_j());
        assert!(small.total_latency_s() < large.total_latency_s());
    }

    #[test]
    fn preset_names() {
        for kind in PlatformKind::all() {
            assert_eq!(Platform::preset(kind).name, kind.name());
        }
    }

    #[test]
    fn cache_policy_accounting() {
        let m = model();
        let full = CachePolicyKind::FullCache;
        let aerp = CachePolicyKind::aerp_default();
        assert_eq!(full.resident_tokens(5000, Some(2048)), 5000);
        assert_eq!(aerp.resident_tokens(5000, Some(2048)), 2048);
        assert_eq!(aerp.resident_tokens(100, Some(2048)), 100);
        assert!(aerp.bytes_per_token_per_layer(&m, 16) < full.bytes_per_token_per_layer(&m, 16));
        // Recomputation trades DRAM bytes for MACs; the full cache does not.
        assert_eq!(full.apply_recompute(1_000_000, 1.0), (1_000_000, 0));
        let (fetched, macs) = aerp.apply_recompute(1_000_000, 1.0);
        assert_eq!(fetched, 750_000);
        assert!(macs > 0);
        // A tighter hiding budget caps the replaced share.
        let (fetched_capped, _) = aerp.apply_recompute(1_000_000, 0.1);
        assert_eq!(fetched_capped, 900_000);
        let rho = CachePolicyKind::balanced_replacement(1.0e12, 64.0e9);
        assert!(rho > 0.15 && rho < 0.35, "balanced rho {rho}");
    }

    #[test]
    fn capacity_grant_shifts_kv_traffic_to_dram() {
        let m = model();
        let platform = Platform::preset(PlatformKind::KelleEdram);
        let workload = InferenceWorkload::triviaqa();
        let full = platform.simulate(&m, &workload, Some(2048));
        // Granting the workload only a quarter of the eDRAM moves KV traffic
        // to the slower DRAM channel: more DRAM energy, less eDRAM refresh
        // (fewer resident bytes to keep alive), and no latency improvement.
        // Note the energy *total* may even dip slightly under 2DRP — the
        // refresh saved on evicted residents roughly offsets the LPDDR4
        // access energy — which is why contention is first a latency and
        // traffic-composition story in the paper's regime.
        let quarter = workload.with_kv_capacity_bytes(Some(1024 * 1024));
        let capped = platform.simulate(&m, &quarter, Some(2048));
        assert!(capped.decode.energy.dram_j > full.decode.energy.dram_j);
        assert!(capped.decode.energy.refresh_j < full.decode.energy.refresh_j);
        assert!(capped.total_latency_s() >= full.total_latency_s());
        // An explicit grant covering the whole memory is byte-identical to no
        // grant at all — the equivalence the serving layer relies on.
        let whole = workload.with_kv_capacity_bytes(Some(u64::MAX));
        let whole_report = platform.simulate(&m, &whole, Some(2048));
        assert_eq!(whole_report, full);
    }

    #[test]
    fn kv_footprint_matches_step_accounting() {
        let m = model();
        let platform = Platform::preset(PlatformKind::KelleEdram);
        let per_token = platform.kv_footprint_bytes(&m, 1, 1);
        assert!(per_token > 0);
        // Footprint is linear in tokens and batch (up to per-call rounding of
        // AERP's fractional per-token byte cost).
        let forty = platform.kv_footprint_bytes(&m, 10, 4);
        assert!(
            forty.abs_diff(per_token * 40) <= 40,
            "{forty} vs {per_token}"
        );
        // The full-cache policy stores strictly more per token than AERP's
        // mixed KV/input-vector layout, and its integral per-token cost makes
        // linearity exact.
        let full = Platform::preset(PlatformKind::OriginalSram);
        assert!(full.kv_footprint_bytes(&m, 10, 4) > forty);
        assert_eq!(
            full.kv_footprint_bytes(&m, 10, 4),
            full.kv_footprint_bytes(&m, 1, 1) * 40
        );
    }

    #[test]
    fn reused_context_skips_prefill_work_but_not_decode_cost() {
        let m = model();
        let platform = Platform::preset(PlatformKind::KelleEdram);
        let fresh = InferenceWorkload::new("fresh", 512, 64, 16);
        let incremental = InferenceWorkload::new("inc", 512, 64, 16).with_reused_context(448);
        let fresh_report = platform.simulate(&m, &fresh, Some(2048));
        let inc_report = platform.simulate(&m, &incremental, Some(2048));
        // Same total context ⇒ identical decode phase.
        assert!(
            (fresh_report.decode.energy.total_j() - inc_report.decode.energy.total_j()).abs()
                < 1e-9
        );
        // Reuse removes pre-fill compute for the prefix.
        assert!(inc_report.prefill.energy.rsa_j < fresh_report.prefill.energy.rsa_j);
    }

    #[test]
    fn incremental_prefill_writes_overflow_when_prefix_fills_kv_memory() {
        let m = model();
        let platform = Platform::preset(PlatformKind::KelleEdram);
        // The reused prefix alone saturates the on-chip KV memory, so the new
        // tokens' writes must spill to DRAM — strictly more DRAM traffic than
        // a fresh pre-fill of just those tokens, which gets the whole KV
        // memory to itself.
        let incremental = InferenceWorkload::new("inc", 4096, 16, 16).with_reused_context(3968);
        let fresh_small = InferenceWorkload::new("small", 128, 16, 16);
        let inc_report = platform.simulate(&m, &incremental, Some(2048));
        let small_report = platform.simulate(&m, &fresh_small, Some(2048));
        assert!(inc_report.prefill.energy.dram_j > small_report.prefill.energy.dram_j);
    }
}
