//! The Kelle scheduler and the baseline computation pattern (§6).
//!
//! The self-attention block of one decoding step loads three weight matrices
//! from the weight SRAM (`W_Q`, `W_K`, `W_V`), reads the cached K and V
//! vectors from the KV memory, and runs the matrix multiplications
//! `MM_Q/MM_K/MM_V/MM_qk/MM_v` plus a softmax.  The *baseline* pattern
//! executes these strictly in sequence (Fig. 12a), which both serialises the
//! two memory streams and keeps the intermediate activations (`X`, `Q`, `K`,
//! `V`) alive in eDRAM for a long time; the *Kelle* pattern (Fig. 12b)
//! overlaps the weight-SRAM and KV-eDRAM streams (they are separate physical
//! memories) and consumes K/V immediately, shrinking the total transient-data
//! lifetime from `6·T_SRAM + 4·T_eDRAM` (Eq. 7) to `4·T_SRAM + 1·T_eDRAM`
//! (Eq. 8).

use serde::{Deserialize, Serialize};

/// Which computation pattern a platform uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Serial schedule of Fig. 12a.
    Baseline,
    /// Overlapped Kelle schedule of Fig. 12b.
    Kelle,
}

/// Per-step memory-stream timings used by the lifetime and overlap models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// Time to load one projection weight matrix from the weight memory
    /// (`T_SRAM` in Eq. 6; for platforms that stream weights from DRAM this is
    /// the per-matrix share of the DRAM transfer).
    pub t_weight_s: f64,
    /// Time to read the cached KV vectors from the KV memory (`T_eDRAM`,
    /// Eq. 5).
    pub t_kv_s: f64,
}

impl SchedulerKind {
    /// Total transient-data lifetime of the step's activations (`X`, `Q`, `K`,
    /// `V`) in seconds — Eq. 7 for the baseline, Eq. 8 for Kelle.
    pub fn activation_lifetime_s(&self, timing: StepTiming) -> f64 {
        match self {
            SchedulerKind::Baseline => 6.0 * timing.t_weight_s + 4.0 * timing.t_kv_s,
            SchedulerKind::Kelle => 4.0 * timing.t_weight_s + timing.t_kv_s,
        }
    }

    /// Exposed memory-access time of one step: the baseline serialises the
    /// weight and KV streams, Kelle overlaps them on separate memories.
    pub fn memory_time_s(&self, total_weight_s: f64, total_kv_s: f64) -> f64 {
        match self {
            SchedulerKind::Baseline => total_weight_s + total_kv_s,
            SchedulerKind::Kelle => total_weight_s.max(total_kv_s),
        }
    }

    /// Fraction of compute time that can hide behind memory transfers.
    ///
    /// The baseline pattern of Fig. 12a runs loads and matrix multiplications
    /// back-to-back, so only a small amount of compute is hidden by the
    /// hardware's request pipelining; the Kelle pattern of Fig. 12b explicitly
    /// overlaps the weight stream, the KV stream and the dependent
    /// multiplications.
    pub fn compute_overlap(&self) -> f64 {
        match self {
            SchedulerKind::Baseline => 0.25,
            SchedulerKind::Kelle => 0.90,
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::Kelle => "kelle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_equations_match_paper() {
        let timing = StepTiming {
            t_weight_s: 2.0,
            t_kv_s: 3.0,
        };
        // Eq. 7: 6*T_SRAM + 4*T_eDRAM.
        assert_eq!(SchedulerKind::Baseline.activation_lifetime_s(timing), 24.0);
        // Eq. 8: 4*T_SRAM + 1*T_eDRAM.
        assert_eq!(SchedulerKind::Kelle.activation_lifetime_s(timing), 11.0);
    }

    #[test]
    fn kelle_lifetime_is_never_longer() {
        for (w, k) in [(1.0, 1.0), (5.0, 0.1), (0.1, 5.0), (3.3, 2.2)] {
            let timing = StepTiming {
                t_weight_s: w,
                t_kv_s: k,
            };
            assert!(
                SchedulerKind::Kelle.activation_lifetime_s(timing)
                    <= SchedulerKind::Baseline.activation_lifetime_s(timing)
            );
        }
    }

    #[test]
    fn memory_overlap() {
        assert_eq!(SchedulerKind::Baseline.memory_time_s(4.0, 3.0), 7.0);
        assert_eq!(SchedulerKind::Kelle.memory_time_s(4.0, 3.0), 4.0);
    }

    #[test]
    fn overlap_fractions_ordered() {
        assert!(SchedulerKind::Kelle.compute_overlap() > SchedulerKind::Baseline.compute_overlap());
    }

    #[test]
    fn names() {
        assert_eq!(SchedulerKind::Baseline.name(), "baseline");
        assert_eq!(SchedulerKind::Kelle.name(), "kelle");
    }
}
