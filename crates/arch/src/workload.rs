//! Inference workload descriptions for the hardware model.
//!
//! §8 evaluates the accelerator on four task settings (context length, decode
//! length) with batch size 16: Lambada (128, 512), TriviaQA (512, 2048),
//! Qasper (1024, 5120) and PG19 (512, 8192), plus the long-input sweep of
//! Fig. 16b (inputs of 2K–16K tokens with 128–2K decode lengths).

use serde::{Deserialize, Serialize};

/// A (context, decode, batch) workload point for the hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InferenceWorkload {
    /// Human-readable task label.
    pub name: &'static str,
    /// Pre-fill (context) length in tokens.
    pub context_len: usize,
    /// Number of decoding steps.
    pub decode_len: usize,
    /// Batch size (sequences decoded together).
    pub batch: usize,
    /// Context tokens already resident in the KV cache when the request
    /// starts (session/prefix reuse).  Pre-fill work covers only the
    /// remaining `context_len - reused_context_len` new tokens; the decode
    /// phase still attends over the full `context_len`.
    pub reused_context_len: usize,
    /// On-chip KV residency granted to this workload, in bytes.  `None` means
    /// the workload gets the platform's whole KV memory to itself (the
    /// single-tenant assumption).  Under shared-capacity arbitration the
    /// scheduler sets this to the workload's share of the eDRAM; KV bytes
    /// beyond the share are charged at off-chip DRAM access cost instead of
    /// eDRAM cost.  The effective residency is always additionally capped by
    /// the physical KV memory capacity.
    pub kv_capacity_bytes: Option<u64>,
}

impl InferenceWorkload {
    /// Creates a workload point.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(name: &'static str, context_len: usize, decode_len: usize, batch: usize) -> Self {
        assert!(context_len > 0, "context length must be non-zero");
        assert!(decode_len > 0, "decode length must be non-zero");
        assert!(batch > 0, "batch size must be non-zero");
        InferenceWorkload {
            name,
            context_len,
            decode_len,
            batch,
            reused_context_len: 0,
            kv_capacity_bytes: None,
        }
    }

    /// Marks the first `reused` context tokens as already resident in the KV
    /// cache (builder style), so pre-fill is charged only for the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `reused > context_len`.
    pub fn with_reused_context(mut self, reused: usize) -> Self {
        assert!(
            reused <= self.context_len,
            "reused context cannot exceed the context length"
        );
        self.reused_context_len = reused;
        self
    }

    /// Context tokens that actually require pre-fill work.  Clamped so that
    /// a hand-written out-of-range `reused_context_len` cannot underflow.
    pub fn new_context_len(&self) -> usize {
        self.context_len.saturating_sub(self.reused_context_len)
    }

    /// Caps the on-chip KV residency granted to this workload (builder
    /// style).  `None` restores the single-tenant default of the whole KV
    /// memory.  See [`InferenceWorkload::kv_capacity_bytes`].
    pub fn with_kv_capacity_bytes(mut self, bytes: Option<u64>) -> Self {
        self.kv_capacity_bytes = bytes;
        self
    }

    /// Lambada: context 128, decode 512, batch 16 (§8).
    pub fn lambada() -> Self {
        Self::new("LA", 128, 512, 16)
    }

    /// TriviaQA: context 512, decode 2048, batch 16 (§8).
    pub fn triviaqa() -> Self {
        Self::new("TQ", 512, 2048, 16)
    }

    /// Qasper: context 1024, decode 5120, batch 16 (§8).
    pub fn qasper() -> Self {
        Self::new("QA", 1024, 5120, 16)
    }

    /// PG19: context 512, decode 8192, batch 16 (§8).
    pub fn pg19() -> Self {
        Self::new("PG", 512, 8192, 16)
    }

    /// The four hardware-evaluation workloads of Fig. 13/14.
    pub fn evaluation_suite() -> Vec<InferenceWorkload> {
        vec![
            Self::lambada(),
            Self::triviaqa(),
            Self::qasper(),
            Self::pg19(),
        ]
    }

    /// A long-input point for the Fig. 16b sweep (`input`-`output` naming like
    /// "16K-128").
    pub fn long_input(context_len: usize, decode_len: usize) -> Self {
        Self::new("long-input", context_len, decode_len, 16)
    }

    /// Overrides the batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        self.batch = batch;
        self
    }

    /// Final sequence length after decoding completes.
    pub fn final_seq_len(&self) -> usize {
        self.context_len + self.decode_len
    }

    /// Average sequence length over the decode phase.
    pub fn average_seq_len(&self) -> f64 {
        self.context_len as f64 + self.decode_len as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_suite_matches_paper() {
        let suite = InferenceWorkload::evaluation_suite();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].context_len, 128);
        assert_eq!(suite[0].decode_len, 512);
        assert_eq!(suite[3].decode_len, 8192);
        assert!(suite.iter().all(|w| w.batch == 16));
    }

    #[test]
    fn sequence_lengths() {
        let w = InferenceWorkload::triviaqa();
        assert_eq!(w.final_seq_len(), 2560);
        assert!((w.average_seq_len() - 1536.0).abs() < 1e-9);
    }

    #[test]
    fn with_batch_overrides() {
        let w = InferenceWorkload::pg19().with_batch(1);
        assert_eq!(w.batch, 1);
    }

    #[test]
    fn reused_context_reduces_prefill_work_only() {
        let w = InferenceWorkload::new("turn", 14, 4, 1).with_reused_context(12);
        assert_eq!(w.new_context_len(), 2);
        assert_eq!(w.final_seq_len(), 18);
        // Full reuse (a decode-only continuation) is allowed.
        let cont = InferenceWorkload::new("cont", 14, 4, 1).with_reused_context(14);
        assert_eq!(cont.new_context_len(), 0);
    }

    #[test]
    fn kv_capacity_cap_is_optional_and_composable() {
        let w = InferenceWorkload::pg19();
        assert_eq!(w.kv_capacity_bytes, None);
        let capped = w.with_kv_capacity_bytes(Some(1 << 20));
        assert_eq!(capped.kv_capacity_bytes, Some(1 << 20));
        assert_eq!(capped.with_kv_capacity_bytes(None).kv_capacity_bytes, None);
    }

    #[test]
    #[should_panic(expected = "reused context cannot exceed")]
    fn reused_context_beyond_context_panics() {
        InferenceWorkload::new("bad", 4, 4, 1).with_reused_context(5);
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_panics() {
        InferenceWorkload::new("x", 1, 1, 0);
    }
}
