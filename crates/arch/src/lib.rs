//! # kelle-arch
//!
//! Analytical performance and energy model of the Kelle edge accelerator (§5)
//! and of the baseline platforms it is evaluated against (§8).
//!
//! The model is phase-level: for each pre-fill and decoding step it accounts
//! for
//!
//! * compute time/energy on the reconfigurable systolic array ([`systolic`])
//!   and the special-function unit ([`sfu`]),
//! * on-chip traffic to the weight SRAM and the KV memory (SRAM or banked
//!   eDRAM, [`memory`]),
//! * off-chip LPDDR4 traffic for weights and KV overflow,
//! * eDRAM refresh energy under the configured refresh policy and scheduler
//!   ([`kelle_edram`] + [`scheduler`]),
//! * the systolic evictor's cost/benefit ([`evictor`]),
//!
//! and rolls them up into a [`platform::PlatformReport`] with the same energy
//! breakdown categories the paper plots (Figs. 3c, 13, 15, 16).
//!
//! Absolute nanoseconds and joules come from the paper's own Table 1 / §8
//! constants, so ratios between platforms (speedup, energy efficiency) are the
//! quantities to compare against the paper; see `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod comparators;
pub mod evictor;
pub mod memory;
pub mod platform;
pub mod roofline;
pub mod scheduler;
pub mod sfu;
pub mod systolic;
pub mod workload;

pub use area::{AreaBreakdown, PowerBreakdown};
pub use comparators::{Comparator, ComparatorKind};
pub use evictor::SystolicEvictor;
pub use memory::MemorySubsystem;
pub use platform::{
    CachePolicyKind, EnergyBreakdown, PhaseMetrics, Platform, PlatformKind, PlatformReport,
};
pub use roofline::{RooflineModel, RooflinePoint};
pub use scheduler::{SchedulerKind, StepTiming};
pub use sfu::SpecialFunctionUnit;
pub use systolic::SystolicArraySpec;
pub use workload::InferenceWorkload;
