//! Criterion benches for the functional accuracy experiments behind
//! Tables 2-6: each target runs one method on one task through the
//! surrogate model with its cache policy and fault model.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::accuracy::{evaluate_method, AccuracyConfig, Method};
use kelle::model::fault::BitFlipRates;
use kelle::workloads::TaskKind;
use std::hint::black_box;

fn quick(task: TaskKind) -> AccuracyConfig {
    let mut config = AccuracyConfig::for_task(task);
    config.prompts = 1;
    config
}

fn bench_table2_methods(c: &mut Criterion) {
    let config = quick(TaskKind::Piqa);
    let mut group = c.benchmark_group("table2_piqa");
    for method in Method::all() {
        group.bench_function(method.name(), |b| {
            b.iter(|| evaluate_method(black_box(&config), method))
        });
    }
    group.finish();
}

fn bench_table3_budget_sweep(c: &mut Criterion) {
    let config = quick(TaskKind::ArcEasy);
    c.bench_function("table3_kelle_arceasy", |b| {
        b.iter(|| evaluate_method(black_box(&config), Method::Kelle))
    });
}

fn bench_fig8_fault_injection(c: &mut Criterion) {
    let config = quick(TaskKind::WikiText2).with_explicit_rates(BitFlipRates::uniform(1e-3));
    c.bench_function("fig8_wk2_bitflip_1e-3", |b| {
        b.iter(|| evaluate_method(black_box(&config), Method::Kelle))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2_methods, bench_table3_budget_sweep, bench_fig8_fault_injection
}
criterion_main!(benches);
