//! Criterion benches for the motivation figures (Fig. 3a/3b/3c, Fig. 4) and
//! the area/power reconstruction.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::experiment;
use kelle::model::ModelKind;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3a_sram_capacity_sweep", |b| {
        b.iter(|| experiment::figure3a(black_box(ModelKind::Llama2_7b)))
    });
    c.bench_function("fig3c_edram_energy_breakdown", |b| {
        b.iter(|| experiment::figure3c(black_box(ModelKind::Llama2_7b)))
    });
    c.bench_function("fig3b_area_breakdown", |b| b.iter(experiment::figure3b));
}

fn bench_area_power(c: &mut Criterion) {
    c.bench_function("area_power_reconstruction", |b| {
        b.iter(experiment::area_power_report)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_area_power
}
criterion_main!(benches);
