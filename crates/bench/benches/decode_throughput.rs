//! Criterion micro-benchmark of the decode hot path: the borrowed-view
//! arena pipeline vs. the pre-arena materializing baseline, per cache policy.
//!
//! The end-to-end numbers (and the `BENCH_decode.json` artifact) come from
//! the `bench_decode` binary; this harness tracks the same comparison at
//! criterion granularity so regressions show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::cache::CachePolicy;
use kelle_bench::decode_perf::{measure_policy, DecodePerfConfig};

fn bench_decode_paths(c: &mut Criterion) {
    let config = DecodePerfConfig {
        prompt_len: 48,
        decode_len: 8,
        repeats: 1,
        seed: 11,
    };
    let mut group = c.benchmark_group("decode_throughput");
    for policy in CachePolicy::all() {
        group.bench_function(format!("{}_paths", policy.name()), |b| {
            b.iter(|| measure_policy(&config, policy))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decode_paths
}
criterion_main!(benches);
