//! Criterion benches for the ablation studies of §8.3 and the design choices
//! called out in DESIGN.md: KV-budget sweep (Table 7), refresh-interval sweep
//! (Table 8), batch-size sweep (Table 9), recomputation (Fig. 15a/16a),
//! refresh-policy/scheduler ablation (Fig. 15b), eviction granularity and
//! popularity-threshold ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::arch::InferenceWorkload;
use kelle::cache::{AerpCache, AerpConfig, CacheBudget, KvCacheBackend};
use kelle::experiment;
use kelle::model::ModelKind;
use std::hint::black_box;

fn bench_table_sweeps(c: &mut Criterion) {
    c.bench_function("table7_budget_sweep", |b| {
        b.iter(|| experiment::table7(black_box(ModelKind::Llama3_2_3b), &[2048, 5250, 8750]))
    });
    c.bench_function("table8_refresh_sweep", |b| {
        b.iter(|| {
            experiment::table8(
                black_box(ModelKind::Llama3_2_3b),
                InferenceWorkload::triviaqa(),
            )
        })
    });
    c.bench_function("table9_batch_sweep", |b| {
        b.iter(|| experiment::table9(black_box(ModelKind::Llama2_7b), &[16, 1]))
    });
}

fn bench_recompute_and_scheduler(c: &mut Criterion) {
    c.bench_function("fig15a_recompute_ablation", |b| {
        b.iter(|| experiment::figure15a(black_box(ModelKind::Llama3_2_3b)))
    });
    c.bench_function("fig15b_refresh_scheduler_ablation", |b| {
        b.iter(|| experiment::figure15b(black_box(ModelKind::Llama2_7b)))
    });
    c.bench_function("fig16a_roofline", |b| {
        b.iter(|| experiment::figure16a(black_box(ModelKind::Llama2_7b)))
    });
}

/// Ablation: popularity threshold of the AERP recomputation rule.
fn bench_popularity_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_popularity_threshold");
    for theta in [0.25f64, 0.5, 0.75] {
        group.bench_function(format!("theta_{theta}"), |b| {
            b.iter(|| {
                let mut cache = AerpCache::with_config(
                    AerpConfig::new(CacheBudget::new(32)).with_popularity_threshold(theta),
                    8,
                );
                cache.finish_prefill(0);
                for t in 0..128usize {
                    let keys: Vec<f32> = (0..8).flat_map(|h| vec![(t + h) as f32; 8]).collect();
                    let values = keys.clone();
                    cache.insert(0, t, &[t as f32; 64], &keys, &values, 8);
                    let scores: Vec<(usize, f32)> = cache
                        .entries(0, 0)
                        .iter()
                        .map(|e| (e.token, 1.0 / (e.token + 1) as f32))
                        .collect();
                    cache.observe_attention(0, 0, &scores);
                }
                black_box(cache.stats())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table_sweeps, bench_recompute_and_scheduler, bench_popularity_threshold
}
criterion_main!(benches);
