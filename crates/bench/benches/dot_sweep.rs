//! `bench_dot_sweep`: measurement-only sweep behind the
//! [`DOT_LANES`](kelle::tensor::DOT_LANES) constant.
//!
//! Two axes, matching the rationale documented on `DOT_LANES` in
//! `crates/tensor/src/matrix.rs`:
//!
//! * **Accumulator width** — a local generic re-implementation of the
//!   documented chunked accumulation ordering at widths 1/2/4/8/16, over the
//!   surrogate's representative row lengths (64–4096 elements), plus the
//!   library [`dot`] as the shipped-width reference.  Width 1 serializes on
//!   FP-add latency; the sweep shows where extra chains stop paying.
//! * **Row-block size** — the blocked matvec
//!   ([`Matrix::matvec_rows_into_slice`]) at block heights 1/4/16/64/full,
//!   the partitioning unit the intra-session fan-out hands to workers.
//!
//! This harness only measures: changing `DOT_LANES` itself is a
//! format-breaking change to the reference accumulation ordering (see the
//! constant's docs), so the tradeoff is re-measured here without touching it.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::tensor::{dot, Matrix};
use std::hint::black_box;

/// The documented reference ordering at a generic accumulator width `L`:
/// lane `j` sums the products at offset `j` of every `L`-wide chunk, the
/// remainder folds into lanes `0..rem`, and lanes reduce in index order.
/// (The library's `dot` additionally fixes a pairwise lane reduction at
/// `L = 4`; for a width *sweep* the in-order reduction is the comparable
/// choice, and the reduction tail it pays is part of what is measured.)
fn dot_width<const L: usize>(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; L];
    let chunks_a = a.chunks_exact(L);
    let chunks_b = b.chunks_exact(L);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for j in 0..L {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (x, y)) in rem_a.iter().zip(rem_b.iter()).enumerate() {
        acc[j] += x * y;
    }
    acc.iter().sum()
}

fn operand(len: usize, phase: f32) -> Vec<f32> {
    (0..len).map(|i| ((i as f32) * phase).sin() * 1.5).collect()
}

fn bench_accumulator_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_sweep/width");
    // Row lengths spanning the surrogate shapes: head_dim, channels, a wide
    // FFN row and an LM-head row.
    for len in [64usize, 256, 1024, 4096] {
        let a = operand(len, 0.7);
        let b = operand(len, 1.3);
        group.bench_function(format!("lanes1/len{len}"), |bch| {
            bch.iter(|| dot_width::<1>(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("lanes2/len{len}"), |bch| {
            bch.iter(|| dot_width::<2>(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("lanes4/len{len}"), |bch| {
            bch.iter(|| dot_width::<4>(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("lanes8/len{len}"), |bch| {
            bch.iter(|| dot_width::<8>(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("lanes16/len{len}"), |bch| {
            bch.iter(|| dot_width::<16>(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("library/len{len}"), |bch| {
            bch.iter(|| dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_row_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_sweep/row_block");
    // An LM-head-shaped projection: many short rows, the case the row-range
    // partitioning actually splits.
    let rows = 512usize;
    let cols = 256usize;
    let m = Matrix::from_rows(
        (0..rows)
            .map(|r| operand(cols, 0.3 + r as f32 * 1e-3))
            .collect(),
    )
    .expect("rectangular benchmark matrix");
    let v = operand(cols, 0.9);
    for block in [1usize, 4, 16, 64, rows] {
        group.bench_function(format!("block{block}/{rows}x{cols}"), |bch| {
            let mut out = vec![0.0f32; rows];
            bch.iter(|| {
                let mut start = 0;
                while start < rows {
                    let end = (start + block).min(rows);
                    m.matvec_rows_into_slice(start..end, black_box(&v), &mut out[start..end])
                        .expect("in-range row block");
                    start = end;
                }
                black_box(out[rows - 1])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_accumulator_widths, bench_row_blocks
}
criterion_main!(benches);
