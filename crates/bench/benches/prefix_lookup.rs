//! Criterion micro-benchmark pinning the radix prefix index's lookup cost:
//! O(matched prefix length), independent of the number of published
//! prefixes.  The satellite regression this guards: a naive store would scan
//! all published entries per lookup, turning every session admission into an
//! O(store-size) walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kelle::prefix::RadixPrefixIndex;

/// Builds an index holding `entries` published prefixes of `len` tokens,
/// fanning out at the first token so the store is wide.
fn build_index(entries: usize, len: usize) -> RadixPrefixIndex<usize> {
    let mut index = RadixPrefixIndex::new();
    for i in 0..entries {
        let seq: Vec<usize> = (0..len).map(|p| i * 131 + p * 7).collect();
        index.values_at_mut(&seq).push(i);
    }
    index
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let query: Vec<usize> = (0..64).map(|p| p * 7).collect();
    let mut group = c.benchmark_group("prefix_lookup");
    for &entries in &[10usize, 1000] {
        let index = build_index(entries, 64);
        group.bench_function(format!("{entries}_published"), |b| {
            b.iter(|| black_box(index.longest_match(black_box(&query), |_| true)))
        });
    }
    // Deep store sharing the query's whole prefix: cost tracks the matched
    // length, not the 1000 boundaries hanging off it.
    let mut deep = RadixPrefixIndex::new();
    for i in 0..1000usize {
        let mut seq: Vec<usize> = (0..64).map(|p| p * 7).collect();
        seq.push(100_000 + i);
        deep.values_at_mut(&seq).push(i);
    }
    group.bench_function("1000_published_shared_spine", |b| {
        b.iter(|| black_box(deep.longest_match(black_box(&query), |_| true)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup_scaling
}
criterion_main!(benches);
