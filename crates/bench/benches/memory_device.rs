//! Criterion benches for the memory-device substrate (Table 1, Fig. 4):
//! device-model queries, retention-curve evaluation and refresh-policy
//! energy accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle_edram::{MemorySpec, RefreshPolicy, RetentionModel};
use std::hint::black_box;

fn bench_retention_curve(c: &mut Criterion) {
    let model = RetentionModel::default();
    c.bench_function("retention_failure_rate_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 1..200u32 {
                total += model.failure_rate(black_box(f64::from(i) * 100.0));
            }
            total
        })
    });
}

fn bench_refresh_policies(c: &mut Criterion) {
    let retention = RetentionModel::default();
    let spec = MemorySpec::kelle_kv_edram();
    let bytes = [1 << 20; 4];
    let mut group = c.benchmark_group("refresh_policy_power");
    for (name, policy) in [
        ("org", RefreshPolicy::Conservative),
        ("uniform", RefreshPolicy::Uniform(1050.0)),
        ("2drp", RefreshPolicy::two_dimensional_default()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| policy.refresh_power_w(black_box(&spec), black_box(&retention), bytes))
        });
    }
    group.finish();
}

fn bench_device_access(c: &mut Criterion) {
    let edram = MemorySpec::kelle_kv_edram();
    let sram = MemorySpec::baseline_sram_4mb();
    c.bench_function("table1_access_energy", |b| {
        b.iter(|| {
            edram.access_energy_j(black_box(1 << 20)) + sram.access_energy_j(black_box(1 << 20))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_retention_curve, bench_refresh_policies, bench_device_access
}
criterion_main!(benches);
