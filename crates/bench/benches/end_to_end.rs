//! Criterion benches for the end-to-end platform simulations behind
//! Fig. 13 (five platforms), Fig. 14 (external comparators) and the
//! Fig. 16b long-input sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use kelle::arch::{Comparator, ComparatorKind, InferenceWorkload, Platform, PlatformKind};
use kelle::experiment;
use kelle::model::{ModelConfig, ModelKind};
use std::hint::black_box;

fn bench_platform_simulation(c: &mut Criterion) {
    let model = ModelConfig::for_kind(ModelKind::Llama2_7b);
    let workload = InferenceWorkload::triviaqa();
    let mut group = c.benchmark_group("fig13_platform_step_simulation");
    for kind in PlatformKind::all() {
        let platform = Platform::preset(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| platform.simulate(black_box(&model), black_box(&workload), Some(2048)))
        });
    }
    group.finish();
}

fn bench_figure13_summary(c: &mut Criterion) {
    c.bench_function("fig13_full_summary_llama2_7b", |b| {
        b.iter(|| experiment::figure13(black_box(ModelKind::Llama2_7b), 2048))
    });
}

fn bench_comparators(c: &mut Criterion) {
    let model = ModelConfig::for_kind(ModelKind::Llama2_7b);
    let workload = InferenceWorkload::lambada();
    let mut group = c.benchmark_group("fig14_comparators");
    for kind in ComparatorKind::all() {
        let comparator = Comparator::preset(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| comparator.simulate(black_box(&model), black_box(&workload)))
        });
    }
    group.finish();
}

fn bench_long_input_sweep(c: &mut Criterion) {
    c.bench_function("fig16b_long_input_sweep", |b| {
        b.iter(|| experiment::figure16b(black_box(ModelKind::Llama2_7b)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_platform_simulation, bench_figure13_summary, bench_comparators, bench_long_input_sweep
}
criterion_main!(benches);
