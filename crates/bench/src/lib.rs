//! # kelle-bench
//!
//! Benchmark harness for the Kelle reproduction:
//!
//! * `benches/` — criterion micro-benchmarks over the platform simulations,
//!   accuracy experiments and device models;
//! * `src/bin/tables.rs` / `src/bin/figures.rs` — regenerate every table and
//!   figure of the paper from the reproduction models;
//! * `src/bin/bench_decode.rs` — the decode-throughput comparison emitting
//!   `BENCH_decode.json`, built on [`decode_perf`].

#![warn(missing_docs)]

pub mod decode_perf;
