//! # kelle-bench
//!
//! Benchmark harness for the Kelle reproduction:
//!
//! * `benches/` — criterion micro-benchmarks over the platform simulations,
//!   accuracy experiments and device models;
//! * `src/bin/tables.rs` / `src/bin/figures.rs` — regenerate every table and
//!   figure of the paper from the reproduction models;
//! * `src/bin/bench_decode.rs` — the decode-throughput comparison emitting
//!   `BENCH_decode.json`, built on [`decode_perf`];
//! * `src/bin/bench_intra.rs` — the intra-session decode-parallelism sweep
//!   emitting `BENCH_intra.json`, built on [`intra_perf`];
//! * `src/bin/bench_prefix.rs` — the cross-session prefix-sharing sweep
//!   emitting `BENCH_prefix.json`, built on [`prefix_perf`];
//! * `src/bin/bench_serving.rs` — the threaded-serving worker-count sweep
//!   emitting `BENCH_serving.json`, built on [`serving_perf`];
//! * `src/bin/bench_tiering.rs` — the tiered-memory pressure sweep emitting
//!   `BENCH_tiering.json`, built on [`tiering_perf`];
//! * `src/bin/bench_chaos.rs` — the chaos-recovery sweep emitting
//!   `BENCH_chaos.json`, built on [`chaos_perf`];
//! * `src/bin/bench_front.rs` — the front-end executor-protocol sweep
//!   (sticky-shard vs work-stealing) emitting `BENCH_front.json`, built on
//!   [`front_perf`];
//! * `src/bin/bench_trace.rs` — the fleet-scale trace replay and
//!   admission-policy shootout emitting `BENCH_trace.json`, built on
//!   [`trace_perf`].

#![warn(missing_docs)]

pub mod chaos_perf;
pub mod decode_perf;
pub mod front_perf;
pub mod intra_perf;
pub mod prefix_perf;
pub mod serving_perf;
pub mod tiering_perf;
pub mod trace_perf;
