//! # kelle-bench
//!
//! Benchmark harness for the Kelle reproduction.  The interesting artefacts
//! are the targets, not this library:
//!
//! * `benches/` — criterion micro-benchmarks over the platform simulations,
//!   accuracy experiments and device models;
//! * `src/bin/tables.rs` / `src/bin/figures.rs` — regenerate every table and
//!   figure of the paper from the reproduction models.

#![warn(missing_docs)]
