//! Intra-session decode parallelism measurement: sequential single-session
//! decode vs. the per-head / row-blocked fan-out over the
//! [`WorkerPool`], at every configured worker
//! count *in the same run*.
//!
//! Both sides run the identical production pipeline
//! ([`prefill`] + [`decode_step`] / [`decode_step_with_runner`]) on the same
//! model, prompt and cache policy; the intra side only changes *where* the
//! per-head attention jobs and projection row blocks execute.  Token streams
//! **and per-step probability bits** are asserted identical while being
//! timed, so a reported speedup can never come from computing something
//! different.
//!
//! The measured surrogate is widened
//! (`channels` 256, `ffn_dim` 688, `vocab` 4096) so each forked job carries
//! enough arithmetic to amortize the fork: at the default functional dims a
//! decode step is a few hundred thousand MACs and queue traffic dominates.
//! The report records the host's available parallelism —
//! on a single-core host every worker count necessarily measures at or below
//! 1.0x (the fan-out machinery is pure overhead without extra cores), which
//! is why `host_parallelism` is part of the JSON artifact: the speedup
//! criterion is only meaningful where `host_parallelism > 1`.
//!
//! Shared by the `bench_intra` binary (which emits `BENCH_intra.json`) and
//! the `tables --table intra` report.

use std::hint::black_box;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::cache::{CacheBudget, CachePolicy};
use kelle::model::fault::NoFaults;
use kelle::model::generation::{decode_step, decode_step_with_runner, prefill, GenerationState};
use kelle::model::{KvCacheBackend, ModelConfig, ModelKind, SurrogateDims, SurrogateModel};
use kelle::parallel::WorkerPool;

/// Configuration of one intra-session parallelism measurement.
#[derive(Debug, Clone)]
pub struct IntraPerfConfig {
    /// Prompt length pre-filled before timing starts.
    pub prompt_len: usize,
    /// Decode steps timed per repetition.
    pub decode_len: usize,
    /// Timing repetitions; the best repetition is reported.
    pub repeats: usize,
    /// Weight/prompt seed.
    pub seed: u64,
    /// Worker counts measured on the intra axis (the coordinator always
    /// participates as one extra lane on top of each count).
    pub worker_counts: Vec<usize>,
}

impl IntraPerfConfig {
    /// The quick configuration used by CI (a few seconds).
    pub fn quick() -> Self {
        IntraPerfConfig {
            prompt_len: 32,
            decode_len: 16,
            repeats: 2,
            seed: 11,
            worker_counts: vec![1, 2, 4],
        }
    }

    /// The full configuration for local benchmarking.
    pub fn full() -> Self {
        IntraPerfConfig {
            prompt_len: 48,
            decode_len: 64,
            repeats: 4,
            seed: 11,
            worker_counts: vec![1, 2, 4],
        }
    }
}

/// Throughput of single-session decode in one execution mode.
#[derive(Debug, Clone)]
pub struct IntraPerfRow {
    /// Worker count on the intra axis, or `None` for the sequential
    /// reference.
    pub workers: Option<usize>,
    /// Decode tokens generated per timed repetition.
    pub decode_tokens: usize,
    /// Best-repetition wall-clock seconds for the timed decode loop.
    pub decode_seconds: f64,
    /// `decode_tokens / decode_seconds`.
    pub tokens_per_sec: f64,
    /// Per-token decode latency in microseconds.
    pub token_latency_us: f64,
    /// `tokens_per_sec / sequential tokens_per_sec` (`None` on the
    /// sequential row).
    pub speedup_vs_sequential: Option<f64>,
    /// Whether this row's token stream and per-step probability bits matched
    /// the sequential reference exactly (always asserted; recorded for the
    /// JSON artifact).
    pub streams_identical: bool,
}

/// A complete intra-session parallelism report.
#[derive(Debug, Clone)]
pub struct IntraPerfReport {
    /// The configuration measured.
    pub config: IntraPerfConfig,
    /// Cache policy driven on every row.
    pub policy: CachePolicy,
    /// Surrogate dimensions of the widened benchmark model.
    pub dims: SurrogateDims,
    /// `std::thread::available_parallelism()` on the measuring host.  The
    /// speedup rows are only meaningful where this exceeds 1: on a
    /// single-core host the fan-out is pure overhead by construction.
    pub host_parallelism: usize,
    /// Sequential reference first, then one row per worker count.
    pub rows: Vec<IntraPerfRow>,
}

impl IntraPerfReport {
    /// The best intra speedup across worker counts (1.0 if only the
    /// sequential row exists).
    pub fn best_speedup(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.speedup_vs_sequential)
            .fold(1.0, f64::max)
    }

    /// Serializes the report as a JSON object (hand-rolled: the workspace has
    /// no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"intra_session_decode\",\n");
        out.push_str(&format!("  \"policy\": \"{}\",\n", self.policy.name()));
        out.push_str(&format!(
            "  \"dims\": {{\"layers\": {}, \"heads\": {}, \"channels\": {}, \
             \"ffn_dim\": {}, \"vocab\": {}}},\n",
            self.dims.layers,
            self.dims.heads,
            self.dims.channels,
            self.dims.ffn_dim,
            self.dims.vocab
        ));
        out.push_str(&format!("  \"prompt_len\": {},\n", self.config.prompt_len));
        out.push_str(&format!("  \"decode_len\": {},\n", self.config.decode_len));
        out.push_str(&format!("  \"repeats\": {},\n", self.config.repeats));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"best_speedup\": {:.4},\n",
            self.best_speedup()
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let workers = row
                .workers
                .map(|w| w.to_string())
                .unwrap_or_else(|| "null".to_string());
            let speedup = row
                .speedup_vs_sequential
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "    {{\"workers\": {workers}, \"decode_tokens\": {}, \
                 \"decode_seconds\": {:.6}, \"tokens_per_sec\": {:.2}, \
                 \"token_latency_us\": {:.2}, \"speedup_vs_sequential\": {speedup}, \
                 \"streams_identical\": {}}}{}\n",
                row.decode_tokens,
                row.decode_seconds,
                row.tokens_per_sec,
                row.token_latency_us,
                row.streams_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_intra.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

/// The widened benchmark surrogate: LLaMA3.2-3B-proportioned but scaled so a
/// decode step carries several million MACs (see the module docs).
fn bench_dims() -> SurrogateDims {
    SurrogateDims {
        layers: 4,
        heads: 8,
        channels: 256,
        ffn_dim: 688,
        vocab: 4096,
    }
}

fn bench_model(seed: u64) -> (SurrogateModel, CacheBudget) {
    let config = ModelConfig::for_kind(ModelKind::Llama3_2_3b).with_surrogate(bench_dims());
    let model = SurrogateModel::new(config, seed);
    let budget = CacheBudget::new(48)
        .with_recent_window(16)
        .with_sink_tokens(2);
    (model, budget)
}

fn bench_prompt(model: &SurrogateModel, len: usize, seed: usize) -> Vec<usize> {
    let vocab = model.dims().vocab;
    (0..len).map(|i| (i * 31 + seed * 17 + 5) % vocab).collect()
}

/// One timed decode run.  Returns (elapsed seconds, tokens, flattened
/// per-step probability bits).
fn run_decode(
    model: &SurrogateModel,
    prompt: &[usize],
    decode_len: usize,
    mut cache: Box<dyn KvCacheBackend>,
    pool: Option<&WorkerPool<'_>>,
) -> (f64, Vec<usize>, Vec<u32>) {
    let mut faults = NoFaults;
    let mut state = GenerationState::new();
    prefill(model, &mut state, prompt, cache.as_mut(), &mut faults);
    let runner = pool.map(WorkerPool::runner);
    let mut generated = Vec::with_capacity(decode_len);
    let mut prob_bits = Vec::with_capacity(decode_len * model.dims().vocab);
    let start = Instant::now();
    for _ in 0..decode_len {
        let step = match &runner {
            Some(runner) => decode_step_with_runner(
                model,
                &mut state,
                None,
                cache.as_mut(),
                &mut faults,
                runner,
            ),
            None => decode_step(model, &mut state, None, cache.as_mut(), &mut faults),
        };
        generated.push(black_box(step.token));
        prob_bits.extend(step.probs.iter().map(|p| p.to_bits()));
    }
    (start.elapsed().as_secs_f64(), generated, prob_bits)
}

/// Best-of-`repeats` measurement of one mode; asserts the produced streams
/// against `reference` when given.
fn measure_mode(
    config: &IntraPerfConfig,
    model: &SurrogateModel,
    budget: CacheBudget,
    policy: CachePolicy,
    prompt: &[usize],
    workers: Option<usize>,
    reference: Option<&(Vec<usize>, Vec<u32>)>,
) -> (IntraPerfRow, (Vec<usize>, Vec<u32>)) {
    let heads = model.dims().heads;
    let mut best = f64::INFINITY;
    let mut streams = (Vec::new(), Vec::new());
    for _ in 0..config.repeats.max(1) {
        let cache = policy.build(budget, heads);
        let (secs, tokens, bits) = match workers {
            Some(count) => std::thread::scope(|scope| {
                let pool = WorkerPool::start(scope, count);
                run_decode(model, prompt, config.decode_len, cache, Some(&pool))
            }),
            None => run_decode(model, prompt, config.decode_len, cache, None),
        };
        best = best.min(secs);
        streams = (tokens, bits);
    }
    if let Some((ref_tokens, ref_bits)) = reference {
        assert_eq!(
            &streams.0, ref_tokens,
            "intra decode diverged from sequential token stream at workers {workers:?}"
        );
        assert_eq!(
            &streams.1, ref_bits,
            "intra decode diverged from sequential probability bits at workers {workers:?}"
        );
    }
    let secs = best.max(f64::MIN_POSITIVE);
    let tokens_per_sec = config.decode_len as f64 / secs;
    let row = IntraPerfRow {
        workers,
        decode_tokens: config.decode_len,
        decode_seconds: best,
        tokens_per_sec,
        token_latency_us: secs * 1e6 / config.decode_len as f64,
        speedup_vs_sequential: None,
        streams_identical: true,
    };
    (row, streams)
}

/// Runs the full sequential-vs-intra comparison.
///
/// # Panics
///
/// Panics if any intra row's token stream or probability bits diverge from
/// the sequential reference (they cannot, by the bit-equivalence guarantee —
/// this is the benchmark's self-check).
pub fn run(config: IntraPerfConfig) -> IntraPerfReport {
    let policy = CachePolicy::Aerp;
    let (model, budget) = bench_model(config.seed);
    let prompt = bench_prompt(&model, config.prompt_len, config.seed as usize);

    let (sequential, reference) =
        measure_mode(&config, &model, budget, policy, &prompt, None, None);
    let base_tps = sequential.tokens_per_sec;
    let mut rows = vec![sequential];
    for &workers in &config.worker_counts {
        let (mut row, _) = measure_mode(
            &config,
            &model,
            budget,
            policy,
            &prompt,
            Some(workers),
            Some(&reference),
        );
        row.speedup_vs_sequential = Some(row.tokens_per_sec / base_tps.max(f64::MIN_POSITIVE));
        rows.push(row);
    }
    IntraPerfReport {
        dims: *model.dims(),
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        config,
        policy,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_runs_and_streams_agree() {
        let config = IntraPerfConfig {
            prompt_len: 8,
            decode_len: 3,
            repeats: 1,
            seed: 5,
            worker_counts: vec![2],
        };
        let report = run(config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.streams_identical));
        assert!(report.rows[0].workers.is_none());
        assert_eq!(report.rows[1].workers, Some(2));
        assert!(report.rows[1].speedup_vs_sequential.is_some());
        assert!(report.host_parallelism >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = IntraPerfReport {
            config: IntraPerfConfig::quick(),
            policy: CachePolicy::Aerp,
            dims: bench_dims(),
            host_parallelism: 8,
            rows: vec![
                IntraPerfRow {
                    workers: None,
                    decode_tokens: 16,
                    decode_seconds: 0.5,
                    tokens_per_sec: 32.0,
                    token_latency_us: 31250.0,
                    speedup_vs_sequential: None,
                    streams_identical: true,
                },
                IntraPerfRow {
                    workers: Some(4),
                    decode_tokens: 16,
                    decode_seconds: 0.25,
                    tokens_per_sec: 64.0,
                    token_latency_us: 15625.0,
                    speedup_vs_sequential: Some(2.0),
                    streams_identical: true,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"intra_session_decode\""));
        assert!(json.contains("\"host_parallelism\": 8"));
        assert!(json.contains("\"speedup_vs_sequential\": 2.0000"));
        assert!(json.contains("\"speedup_vs_sequential\": null"));
        assert!((report.best_speedup() - 2.0).abs() < 1e-9);
    }
}
