//! Front-end executor-protocol sweep: queue traffic and throughput of the
//! sticky-shard executor vs. the work-stealing pool on a long-lived fleet.
//!
//! Per worker count the sweep serves the *same* deterministic
//! [`FrontScenario`] fleet through `kelle::front` twice — once on
//! [`ExecutorKind::Sticky`] (sessions pinned to worker shards, only
//! per-tick step results cross threads) and once on
//! [`ExecutorKind::Stealing`] (whole sessions round-trip through the shared
//! task queue every tick) — and reports, per row:
//!
//! * coordinator↔worker queue crossings, total and per scheduler tick (the
//!   number the sticky shard exists to shrink);
//! * sessions migrated between workers (always zero under pinning);
//! * end-to-end decode throughput (fleet decode tokens / wall time).
//!
//! Token streams are asserted identical between every row and the first
//! measured run while being timed — the queue-traffic win can never come
//! from computing something different.  This is the sweep behind the
//! `bench_front` binary (which emits `BENCH_front.json`, gated in CI) and
//! the `tables --table front` report.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::workloads::FrontScenario;
use kelle::{
    BatchOutcome, ExecutorKind, FrontConfig, KelleEngine, PrefixSharingConfig, ServeRequest,
    StreamPoll, TokenStream,
};

/// Configuration of one front-end sweep.
#[derive(Debug, Clone)]
pub struct FrontPerfConfig {
    /// The long-lived fleet and the worker counts to sweep.
    pub scenario: FrontScenario,
    /// Engine seed.
    pub seed: u64,
}

impl FrontPerfConfig {
    /// The quick configuration used by CI: the acceptance shape — the
    /// 16-session long-lived fleet (96 decode steps each) at 1, 2 and 4
    /// workers.
    pub fn quick() -> Self {
        FrontPerfConfig {
            scenario: FrontScenario::long_lived_fleet(),
            seed: 23,
        }
    }

    /// The full configuration for local benchmarking: a longer decode and a
    /// wider worker sweep.
    pub fn full() -> Self {
        let mut scenario = FrontScenario::long_lived_fleet().with_worker_counts(vec![1, 2, 4, 8]);
        scenario.fleet = scenario.fleet.with_decode_len(192);
        FrontPerfConfig { scenario, seed: 23 }
    }
}

/// One measured front-end run (one worker count × one executor protocol).
#[derive(Debug, Clone)]
pub struct FrontPerfRow {
    /// Worker threads behind the front.
    pub workers: usize,
    /// Executor protocol driving the decode ticks.
    pub executor: ExecutorKind,
    /// Fleet decode tokens generated (identical on every row by design).
    pub decode_tokens: usize,
    /// End-to-end wall time (submit through final commit) in seconds.
    pub wall_seconds: f64,
    /// End-to-end decode throughput: `decode_tokens / wall_seconds`.
    pub decode_tokens_per_sec: f64,
    /// Coordinator↔worker queue crossings over the whole serve.
    pub queue_crossings: u64,
    /// Queue crossings per scheduler tick.
    pub crossings_per_tick: f64,
    /// Sessions whose decode commit came from a different worker than the
    /// previous one (zero under sticky pinning).
    pub sessions_migrated: u64,
    /// Scheduler ticks taken (identical across executors by design).
    pub ticks: u64,
    /// Whether this row's token streams matched the first measured run
    /// (always asserted; recorded for the JSON artifact).
    pub streams_identical: bool,
}

/// A complete front-end sweep report.
#[derive(Debug, Clone)]
pub struct FrontPerfReport {
    /// Scenario label.
    pub workload: String,
    /// The configuration measured.
    pub config: FrontPerfConfig,
    /// Two rows (sticky, stealing) per worker count, in sweep order.
    pub rows: Vec<FrontPerfRow>,
}

impl FrontPerfReport {
    fn executor_label(kind: ExecutorKind) -> &'static str {
        match kind {
            ExecutorKind::Sticky => "sticky",
            ExecutorKind::Stealing => "stealing",
        }
    }

    /// Serializes the report as JSON (hand-rolled: the workspace has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let fleet = &self.config.scenario.fleet;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!(
            "  \"sessions\": {}, \"system_tokens\": {}, \"user_tokens\": {}, \"decode_len\": {},\n",
            fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workers\": {}, \"executor\": \"{}\", \"decode_tokens\": {}, \
                 \"wall_seconds\": {:.6}, \"decode_tokens_per_sec\": {:.2}, \
                 \"queue_crossings\": {}, \"crossings_per_tick\": {:.4}, \
                 \"sessions_migrated\": {}, \"ticks\": {}, \"streams_identical\": {}}}{}\n",
                row.workers,
                Self::executor_label(row.executor),
                row.decode_tokens,
                row.wall_seconds,
                row.decode_tokens_per_sec,
                row.queue_crossings,
                row.crossings_per_tick,
                row.sessions_migrated,
                row.ticks,
                row.streams_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_front.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

fn engine(config: &FrontPerfConfig, workers: usize) -> KelleEngine {
    KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .workers(workers)
        .seed(config.seed)
        .build()
}

fn requests_for(scenario: &FrontScenario) -> Vec<ServeRequest> {
    scenario
        .fleet
        .prompts()
        .into_iter()
        .map(|prompt| {
            ServeRequest::builder(prompt)
                .decode_len(scenario.fleet.decode_len)
                .label("front-serving")
                .build()
        })
        .collect()
}

/// Serves the fleet once through the front on the given executor, timing
/// the whole serve (submission through final commit) and collecting every
/// token stream.
fn serve_fleet(
    config: &FrontPerfConfig,
    workers: usize,
    kind: ExecutorKind,
) -> (Vec<Vec<usize>>, BatchOutcome, f64) {
    let engine = engine(config, workers);
    assert!(
        engine.publish_prefix(&config.scenario.fleet.system_prompt()),
        "publication must succeed"
    );
    let requests = requests_for(&config.scenario);
    let mut front_config = FrontConfig::default().with_executor(kind);
    if let Some(capacity) = config.scenario.stream_capacity {
        front_config = front_config.with_stream_capacity(capacity);
    }
    let start = Instant::now();
    let (streams, outcome) = engine.front(front_config, |front| {
        let handles: Vec<TokenStream> = requests
            .into_iter()
            .map(|request| front.submit(request).expect("unbounded admission queue"))
            .collect();
        handles
            .iter()
            .map(|stream| {
                let mut tokens = Vec::new();
                loop {
                    match front.recv(stream) {
                        StreamPoll::Token(token) => tokens.push(token),
                        StreamPoll::Finished { shed } => {
                            assert_eq!(shed, None, "benchmark fleet finishes naturally");
                            break;
                        }
                        StreamPoll::Pending => unreachable!("live streams progress"),
                    }
                }
                tokens
            })
            .collect::<Vec<_>>()
    });
    let wall_s = start.elapsed().as_secs_f64();
    (streams, outcome, wall_s)
}

/// Runs the full sweep: both executor protocols at every worker count.
///
/// # Panics
///
/// Panics if any row generates a different token stream than the first
/// measured run (it cannot, by the front's determinism guarantee — this is
/// the benchmark's self-check), or if the sticky executor fails to cross
/// the queue strictly less per tick than the stealing executor at any
/// worker count (the structural win the subsystem exists for).
pub fn run(config: FrontPerfConfig) -> FrontPerfReport {
    let decode_tokens = config.scenario.total_decode_tokens();
    let mut reference: Option<Vec<Vec<usize>>> = None;
    let mut rows = Vec::new();
    for &workers in &config.scenario.worker_counts {
        let mut per_kind = Vec::new();
        for kind in [ExecutorKind::Sticky, ExecutorKind::Stealing] {
            let (streams, outcome, wall_s) = serve_fleet(&config, workers, kind);
            let streams_identical = match &reference {
                None => {
                    reference = Some(streams);
                    true
                }
                Some(expected) => expected == &streams,
            };
            assert!(
                streams_identical,
                "{kind:?} at {workers} workers changed a token stream"
            );
            per_kind.push(FrontPerfRow {
                workers,
                executor: kind,
                decode_tokens,
                wall_seconds: wall_s,
                decode_tokens_per_sec: decode_tokens as f64 / wall_s.max(f64::MIN_POSITIVE),
                queue_crossings: outcome.parallel.queue_crossings,
                crossings_per_tick: outcome.parallel.crossings_per_tick(),
                sessions_migrated: outcome.parallel.sessions_migrated,
                ticks: outcome.parallel.ticks,
                streams_identical,
            });
        }
        let (sticky, stealing) = (&per_kind[0], &per_kind[1]);
        assert!(
            sticky.crossings_per_tick < stealing.crossings_per_tick,
            "sticky must cross the queue strictly less per tick at {workers} workers \
             (sticky {:.4} !< stealing {:.4})",
            sticky.crossings_per_tick,
            stealing.crossings_per_tick,
        );
        rows.extend(per_kind);
    }
    FrontPerfReport {
        workload: "front_long_lived_fleet".to_string(),
        config,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle::workloads::SharedPromptScenario;

    #[test]
    fn sweep_asserts_identical_streams_and_the_sticky_crossing_win() {
        let config = FrontPerfConfig {
            scenario: FrontScenario::new(
                SharedPromptScenario::new(3, 24, 4).with_decode_len(6),
                vec![1, 2],
            ),
            seed: 5,
        };
        let report = run(config);
        // Two executor rows per worker count, streams always identical.
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.streams_identical));
        assert!(report.rows.iter().all(|r| r.decode_tokens == 18));
        for pair in report.rows.chunks(2) {
            let (sticky, stealing) = (&pair[0], &pair[1]);
            assert_eq!(sticky.executor, ExecutorKind::Sticky);
            assert_eq!(stealing.executor, ExecutorKind::Stealing);
            assert_eq!(sticky.workers, stealing.workers);
            // Same deterministic tick count, strictly less queue traffic,
            // and pinning never migrates a session.
            assert_eq!(sticky.ticks, stealing.ticks);
            assert!(sticky.queue_crossings < stealing.queue_crossings);
            assert_eq!(sticky.sessions_migrated, 0);
            assert!(sticky.decode_tokens_per_sec > 0.0);
        }
    }

    #[test]
    fn a_bounded_stream_capacity_sweeps_without_changing_tokens() {
        let fleet = SharedPromptScenario::new(2, 16, 4).with_decode_len(5);
        let unbounded = run(FrontPerfConfig {
            scenario: FrontScenario::new(fleet.clone(), vec![2]),
            seed: 5,
        });
        let bounded = run(FrontPerfConfig {
            scenario: FrontScenario::new(fleet, vec![2]).with_stream_capacity(2),
            seed: 5,
        });
        for (a, b) in unbounded.rows.iter().zip(bounded.rows.iter()) {
            assert_eq!(a.decode_tokens, b.decode_tokens);
            assert_eq!(a.executor, b.executor);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = FrontPerfReport {
            workload: "front_long_lived_fleet".into(),
            config: FrontPerfConfig::quick(),
            rows: vec![
                FrontPerfRow {
                    workers: 2,
                    executor: ExecutorKind::Sticky,
                    decode_tokens: 1536,
                    wall_seconds: 0.5,
                    decode_tokens_per_sec: 3072.0,
                    queue_crossings: 64,
                    crossings_per_tick: 0.6154,
                    sessions_migrated: 0,
                    ticks: 104,
                    streams_identical: true,
                },
                FrontPerfRow {
                    workers: 2,
                    executor: ExecutorKind::Stealing,
                    decode_tokens: 1536,
                    wall_seconds: 0.75,
                    decode_tokens_per_sec: 2048.0,
                    queue_crossings: 3104,
                    crossings_per_tick: 29.8462,
                    sessions_migrated: 3,
                    ticks: 104,
                    streams_identical: true,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"front_long_lived_fleet\""));
        assert!(json.contains("\"executor\": \"sticky\""));
        assert!(json.contains("\"executor\": \"stealing\""));
        assert!(json.contains("\"crossings_per_tick\": 0.6154"));
        assert!(json.contains("\"sessions_migrated\": 0"));
        assert!(json.contains("\"streams_identical\": true"));
    }
}
