//! Tiered-memory pressure sweep: a fleet whose total KV demand exceeds the
//! eDRAM budget, served through the `kelle::tier` hierarchy.
//!
//! The sweep serves the same deterministic [`TieringScenario`] fleet twice
//! on identically configured engines — once unbounded (the reference), once
//! with the eDRAM → DRAM → NVMe hierarchy sized to a fraction of the
//! fleet's demand — and reports:
//!
//! * the fleet's total full-scale KV demand and each tier's budget;
//! * per-tier residency peaks (raw and settled) and migration traffic;
//! * demotion/promotion counts, migrated bytes and the modelled migration
//!   latency/energy charged through the hardware model.
//!
//! Token streams and fault statistics are asserted bit-identical between
//! the two runs while being measured, and the settled eDRAM residency is
//! asserted within its budget — demonstrating that a fleet bigger than the
//! on-chip memory completes with overflow held in the slower tiers.  This
//! is the sweep behind the `bench_tiering` binary (which emits
//! `BENCH_tiering.json`, gated in CI) and the `tables --table tiering`
//! report.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::edram::{MemoryTier, TierBudgets};
use kelle::tier::{TierConfig, TieringMetrics};
use kelle::workloads::TieringScenario;
use kelle::{KelleEngine, PrefixSharingConfig, SchedulerConfig, ServeOptions, ServeRequest};

/// Configuration of one tiered-memory pressure sweep.
#[derive(Debug, Clone)]
pub struct TieringPerfConfig {
    /// The pressure fleet and the tier budgets (as fractions of its demand).
    pub scenario: TieringScenario,
    /// Engine seed.
    pub seed: u64,
}

impl TieringPerfConfig {
    /// The quick configuration used by CI: the acceptance-shape pressure
    /// fleet (eDRAM at 40 % of the fleet's KV demand, DRAM at 50 %).
    pub fn quick() -> Self {
        TieringPerfConfig {
            scenario: TieringScenario::edge_pressure(),
            seed: 23,
        }
    }

    /// The full configuration for local benchmarking: a longer decode, so
    /// growth keeps the hierarchy under pressure for more ticks.
    pub fn full() -> Self {
        let mut scenario = TieringScenario::edge_pressure();
        scenario.fleet = scenario.fleet.with_decode_len(128);
        TieringPerfConfig { scenario, seed: 23 }
    }
}

/// One tier's measured residency and traffic.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// The tier.
    pub tier: MemoryTier,
    /// The tier's byte budget (`u64::MAX` = unbounded NVMe).
    pub budget_bytes: u64,
    /// Peak bytes ever resident (including transient within-tick residency).
    pub peak_bytes: u64,
    /// Peak bytes resident after a rebalance — what the budget bounds.
    pub settled_peak_bytes: u64,
    /// Bytes migrated into the tier.
    pub in_bytes: u64,
    /// Bytes migrated out of the tier.
    pub out_bytes: u64,
}

/// A complete tiered-memory pressure report.
#[derive(Debug, Clone)]
pub struct TieringPerfReport {
    /// Scenario label.
    pub workload: String,
    /// The configuration measured.
    pub config: TieringPerfConfig,
    /// The fleet's total resident KV demand in bytes — the shared system
    /// prompt counted once (it is deduplicated across the fleet) plus every
    /// session's private prompt + decode footprint.  This is the pressure
    /// the hierarchy actually absorbs.
    pub total_kv_demand_bytes: u64,
    /// One row per tier, fastest first.
    pub tiers: Vec<TierRow>,
    /// The raw batch-level tiering metrics of the tiered run.
    pub metrics: TieringMetrics,
    /// Wall time of the tiered run in seconds.
    pub tiered_seconds: f64,
    /// Wall time of the unbounded reference run in seconds.
    pub unbounded_seconds: f64,
    /// Whether the tiered streams matched the unbounded reference (always
    /// asserted; recorded for the JSON artifact).
    pub streams_identical: bool,
}

impl TieringPerfReport {
    /// Serializes the report as JSON (hand-rolled: the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let fleet = &self.config.scenario.fleet;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!(
            "  \"sessions\": {}, \"system_tokens\": {}, \"user_tokens\": {}, \"decode_len\": {},\n",
            fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
        ));
        out.push_str(&format!(
            "  \"total_kv_demand_bytes\": {},\n",
            self.total_kv_demand_bytes
        ));
        out.push_str("  \"tiers\": [\n");
        for (i, row) in self.tiers.iter().enumerate() {
            let budget = if row.budget_bytes == u64::MAX {
                "null".to_string()
            } else {
                row.budget_bytes.to_string()
            };
            out.push_str(&format!(
                "    {{\"tier\": \"{}\", \"budget_bytes\": {}, \"peak_bytes\": {}, \
                 \"settled_peak_bytes\": {}, \"in_bytes\": {}, \"out_bytes\": {}}}{}\n",
                row.tier.name(),
                budget,
                row.peak_bytes,
                row.settled_peak_bytes,
                row.in_bytes,
                row.out_bytes,
                if i + 1 < self.tiers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"demotions\": {}, \"promotions\": {}, \"migrated_bytes\": {},\n",
            self.metrics.demotions, self.metrics.promotions, self.metrics.migrated_bytes
        ));
        out.push_str(&format!(
            "  \"migration_time_s\": {:.9}, \"migration_energy_j\": {:.9},\n",
            self.metrics.migration_time_s, self.metrics.migration_energy_j
        ));
        out.push_str(&format!(
            "  \"tiered_seconds\": {:.6}, \"unbounded_seconds\": {:.6},\n",
            self.tiered_seconds, self.unbounded_seconds
        ));
        out.push_str(&format!(
            "  \"streams_identical\": {}\n",
            self.streams_identical
        ));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_tiering.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

fn engine(config: &TieringPerfConfig) -> KelleEngine {
    KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(config.seed)
        .build()
}

fn requests_for(scenario: &TieringScenario) -> Vec<ServeRequest> {
    scenario
        .fleet
        .prompts()
        .into_iter()
        .map(|prompt| {
            ServeRequest::builder(prompt)
                .decode_len(scenario.fleet.decode_len)
                .label("tiered-serving")
                .build()
        })
        .collect()
}

/// Runs the pressure sweep: the unbounded reference, then the tiered run.
///
/// # Panics
///
/// Panics if the tiered run changes any token stream or fault statistic, or
/// if the settled eDRAM residency exceeds its budget (it cannot, by the
/// tiering guarantees — this is the benchmark's self-check).
pub fn run(config: TieringPerfConfig) -> TieringPerfReport {
    let probe = engine(&config);
    let fleet = &config.scenario.fleet;
    let shared = probe.kv_footprint_bytes(fleet.system_tokens);
    let private = probe.kv_footprint_bytes(fleet.user_tokens + fleet.decode_len);
    let demand = shared + private * fleet.sessions as u64;
    let edram = config.scenario.edram_budget_bytes(demand);
    let dram = config.scenario.dram_budget_bytes(demand);
    assert!(
        demand > edram,
        "the pressure fleet must exceed the eDRAM budget"
    );
    let budgets = TierBudgets::with_edram(edram).with_dram(dram);
    let tiering = TierConfig::with_edram_budget(edram).with_budgets(budgets);

    let reference_engine = engine(&config);
    assert!(reference_engine.publish_prefix(&fleet.system_prompt()));
    let start = Instant::now();
    let reference = reference_engine
        .serve(requests_for(&config.scenario), ServeOptions::new())
        .expect("infallible options cannot fail");
    let unbounded_seconds = start.elapsed().as_secs_f64();

    let tiered_engine = engine(&config);
    assert!(tiered_engine.publish_prefix(&fleet.system_prompt()));
    let start = Instant::now();
    let tiered = tiered_engine
        .serve(
            requests_for(&config.scenario),
            ServeOptions::new().with_scheduler(SchedulerConfig::default().with_tiering(tiering)),
        )
        .expect("infallible options cannot fail");
    let tiered_seconds = start.elapsed().as_secs_f64();

    let streams_identical = reference
        .outcomes
        .iter()
        .zip(tiered.outcomes.iter())
        .all(|(a, b)| {
            a.generated == b.generated && a.faults == b.faults && a.hardware == b.hardware
        });
    assert!(streams_identical, "tiering changed a token stream");
    let metrics = tiered.tiering;
    assert!(
        metrics.edram.settled_peak_bytes <= edram,
        "settled eDRAM residency exceeded its budget"
    );
    assert!(
        metrics.dram.in_bytes + metrics.nvme.in_bytes > 0,
        "a fleet bigger than eDRAM must overflow into the slower tiers"
    );

    let tiers = MemoryTier::all()
        .into_iter()
        .map(|tier| {
            let usage = metrics.tier(tier);
            TierRow {
                tier,
                budget_bytes: budgets.budget(tier),
                peak_bytes: usage.peak_bytes,
                settled_peak_bytes: usage.settled_peak_bytes,
                in_bytes: usage.in_bytes,
                out_bytes: usage.out_bytes,
            }
        })
        .collect();
    TieringPerfReport {
        workload: "tiered_shared_prompt".to_string(),
        config,
        total_kv_demand_bytes: demand,
        tiers,
        metrics,
        tiered_seconds,
        unbounded_seconds,
        streams_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle::workloads::SharedPromptScenario;

    fn tiny() -> TieringPerfConfig {
        TieringPerfConfig {
            scenario: TieringScenario::new(
                SharedPromptScenario::new(3, 24, 4).with_decode_len(3),
                40,
                50,
            ),
            seed: 5,
        }
    }

    #[test]
    fn pressure_sweep_bounds_edram_and_keeps_streams() {
        let report = run(tiny());
        assert!(report.streams_identical);
        assert!(report.total_kv_demand_bytes > report.tiers[0].budget_bytes);
        assert!(report.tiers[0].settled_peak_bytes <= report.tiers[0].budget_bytes);
        assert!(report.metrics.demotions > 0);
        assert!(report.metrics.migrated_bytes > 0);
        assert!(report.metrics.migration_time_s > 0.0);
        assert!(report.metrics.migration_energy_j > 0.0);
        // Overflow landed in DRAM (and possibly NVMe).
        assert!(report.tiers[1].in_bytes + report.tiers[2].in_bytes > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(tiny());
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"tiered_shared_prompt\""));
        assert!(json.contains("\"tier\": \"edram\""));
        assert!(json.contains("\"tier\": \"nvme\""));
        assert!(json.contains("\"demotions\": "));
        assert!(json.contains("\"streams_identical\": true"));
    }
}
