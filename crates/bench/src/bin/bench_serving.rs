//! Threaded-serving benchmark binary: serves the shared-prompt fleet through
//! the single-threaded scheduler and the `kelle::parallel` worker pool at
//! every configured worker count *in the same run* (streams asserted
//! identical while being timed), prints a table, and emits the
//! `BENCH_serving.json` artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_serving -- \
//!     [--quick] [--out BENCH_serving.json]`

use kelle_bench::serving_perf::{self, ServingPerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_serving.json"));

    let config = if quick {
        ServingPerfConfig::quick()
    } else {
        ServingPerfConfig::full()
    };
    let fleet = &config.scenario.fleet;
    println!(
        "threaded serving on parallel_shared_prompt ({} sessions, system {}, user {}, decode {}){}",
        fleet.sessions,
        fleet.system_tokens,
        fleet.user_tokens,
        fleet.decode_len,
        if quick { " [quick]" } else { "" }
    );

    let report = serving_perf::run(config);
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>14} {:>9} {:>10} {:>10}",
        "workers",
        "decode tok",
        "prefill s",
        "decode s",
        "decode tok/s",
        "speedup",
        "p50 us/tok",
        "p99 us/tok"
    );
    for row in &report.rows {
        let workers = row
            .workers
            .map(|w| w.to_string())
            .unwrap_or_else(|| "sequential".to_string());
        let speedup = row
            .speedup_vs_one_worker
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>12} {:>12} {:>12.4} {:>12.4} {:>14.0} {:>9} {:>10.1} {:>10.1}",
            workers,
            row.decode_tokens,
            row.prefill_seconds,
            row.decode_seconds,
            row.decode_tokens_per_sec,
            speedup,
            row.token_latency_p50_us,
            row.token_latency_p99_us,
        );
    }
    println!("(streams verified bit-identical on every row, including fault statistics;");
    println!(" p50/p99 are single-session per-token decode latencies in the same mode)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
