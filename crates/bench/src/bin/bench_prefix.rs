//! Prefix-sharing benchmark binary: serves the shared-system-prompt fleet
//! with and without cross-session prefix sharing *in the same run* (streams
//! asserted identical while being timed), prints a table, and emits the
//! `BENCH_prefix.json` artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_prefix -- \
//!     [--quick] [--out BENCH_prefix.json]`

use kelle_bench::prefix_perf::{self, PrefixPerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_prefix.json"));

    let config = if quick {
        PrefixPerfConfig::quick()
    } else {
        PrefixPerfConfig::full()
    };
    println!(
        "prefix sharing on shared_system_prompt (system {}, user {}, decode {}){}",
        config.system_tokens,
        config.user_tokens,
        config.decode_len,
        if quick { " [quick]" } else { "" }
    );

    let report = prefix_perf::run(config);
    println!(
        "{:>8} {:>15} {:>15} {:>14} {:>14} {:>8} {:>12} {:>12}",
        "sessions",
        "cold tok (pf)",
        "shared tok (pf)",
        "cold tok/s",
        "shared tok/s",
        "speedup",
        "cold KV MB",
        "shared KV MB"
    );
    for row in &report.rows {
        println!(
            "{:>8} {:>15} {:>15} {:>14.0} {:>14.0} {:>7.2}x {:>12.2} {:>12.2}",
            row.sessions,
            row.baseline_prefill_tokens,
            row.shared_prefill_tokens,
            row.baseline_prefill_tokens_per_sec,
            row.shared_prefill_tokens_per_sec,
            row.speedup,
            row.baseline_resident_kv_bytes as f64 / (1024.0 * 1024.0),
            row.shared_resident_kv_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!("(streams verified identical on every row; prefix compute runs once per fleet)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
