//! Regenerates every *figure* of the paper's motivation and evaluation
//! sections from the reproduction models.
//!
//! Usage: `cargo run -p kelle-bench --bin figures [-- --figure <id>]`
//! where `<id>` is one of `3a`, `3b`, `3c`, `4`, `8a`, `8b`, `8c`, `13`, `14`,
//! `15a`, `15b`, `16a`, `16b`, or `all` (default).

use kelle::accuracy::{evaluate_method, AccuracyConfig, Method};
use kelle::arch::PlatformKind;
use kelle::edram::{RefreshPolicy, RetentionModel};
use kelle::experiment::{self, DEFAULT_N_PRIME};
use kelle::model::fault::BitFlipRates;
use kelle::model::ModelKind;
use kelle::workloads::TaskKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--figure")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();

    let all = which == "all";
    if all || which == "3a" {
        figure3a();
    }
    if all || which == "3b" {
        figure3b();
    }
    if all || which == "3c" {
        figure3c();
    }
    if all || which == "4" {
        figure4();
    }
    if all || which == "8a" {
        figure8a();
    }
    if all || which == "8b" {
        figure8b();
    }
    if all || which == "8c" {
        figure8c();
    }
    if all || which == "13" {
        figure13();
    }
    if all || which == "14" {
        figure14();
    }
    if all || which == "15a" {
        figure15a();
    }
    if all || which == "15b" {
        figure15b();
    }
    if all || which == "16a" {
        figure16a();
    }
    if all || which == "16b" {
        figure16b();
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn figure3a() {
    header("Figure 3a: normalized latency, 4MB vs 8MB SRAM (LLaMA2-7B)");
    let rows = experiment::figure3a(ModelKind::Llama2_7b);
    let base = rows[0].1;
    println!("{:>10} {:>12} {:>12}", "decode", "4MB (norm)", "8MB (norm)");
    for (len, small, large) in rows {
        println!("{:>10} {:>12.3} {:>12.3}", len, small / base, large / base);
    }
}

fn figure3b() {
    header("Figure 3b: area breakdown, 8MB eDRAM system vs 8MB SRAM system");
    let (edram, sram) = experiment::figure3b();
    println!(
        "eDRAM system: logic {:.2} + buffers {:.2} = {:.2} mm^2 (DRAM die {:.0} mm^2)",
        edram.rsa_mm2 + edram.sfu_mm2 + edram.logic_mm2,
        edram.memory_mm2,
        edram.onchip_total_mm2(),
        edram.dram_mm2
    );
    println!(
        "SRAM  system: logic {:.2} + buffers {:.2} = {:.2} mm^2",
        sram.rsa_mm2 + sram.sfu_mm2 + sram.logic_mm2,
        sram.memory_mm2,
        sram.onchip_total_mm2()
    );
}

fn figure3c() {
    header("Figure 3c: energy breakdown of the unoptimised eDRAM system");
    println!(
        "{:>10} {:>16} {:>14}",
        "decode", "refresh share", "DRAM share"
    );
    for (len, refresh, dram) in experiment::figure3c(ModelKind::Llama2_7b) {
        println!(
            "{:>10} {:>15.1}% {:>13.1}%",
            len,
            refresh * 100.0,
            dram * 100.0
        );
    }
}

fn figure4() {
    header("Figure 4: eDRAM retention failure rate vs refresh interval (65nm, 105C)");
    let model = RetentionModel::default();
    println!("{:>14} {:>16}", "interval (us)", "failure rate");
    for interval in [
        45.0, 100.0, 360.0, 784.0, 1050.0, 1778.0, 5400.0, 9120.0, 20_000.0,
    ] {
        println!("{:>14} {:>16.3e}", interval, model.failure_rate(interval));
    }
}

fn fig8_config() -> AccuracyConfig {
    let mut config = AccuracyConfig::for_task(TaskKind::WikiText2);
    config.prompts = 2;
    config
}

fn figure8a() {
    header("Figure 8a: PPL proxy vs uniform KV bit-flip rate (LLaMA2-7B, WK2-like)");
    println!("{:>12} {:>12} {:>12}", "error rate", "ppl score", "mean KL");
    for rate in [1e-5, 1e-4, 1e-3, 1e-2, 1e-1] {
        let config = fig8_config().with_explicit_rates(BitFlipRates::uniform(rate));
        let result = evaluate_method(&config, Method::Kelle);
        println!(
            "{:>12.0e} {:>12.2} {:>12.4}",
            rate, result.score, result.fidelity.mean_kl
        );
    }
}

fn figure8b() {
    header("Figure 8b: errors on high-score vs low-score tokens");
    println!(
        "{:>12} {:>14} {:>14}",
        "error rate", "HST-only KL", "LST-only KL"
    );
    for rate in [5e-4, 5e-2] {
        let hst = evaluate_method(
            &fig8_config().with_explicit_rates(BitFlipRates {
                hst_msb: rate,
                hst_lsb: rate,
                lst_msb: 0.0,
                lst_lsb: 0.0,
            }),
            Method::Kelle,
        );
        let lst = evaluate_method(
            &fig8_config().with_explicit_rates(BitFlipRates {
                hst_msb: 0.0,
                hst_lsb: 0.0,
                lst_msb: rate,
                lst_lsb: rate,
            }),
            Method::Kelle,
        );
        println!(
            "{:>12.0e} {:>14.4} {:>14.4}",
            rate, hst.fidelity.mean_kl, lst.fidelity.mean_kl
        );
    }
}

fn figure8c() {
    header("Figure 8c: errors on MSBs vs LSBs");
    println!(
        "{:>12} {:>14} {:>14}",
        "error rate", "MSB-only KL", "LSB-only KL"
    );
    for rate in [5e-4, 5e-2] {
        let msb = evaluate_method(
            &fig8_config().with_explicit_rates(BitFlipRates {
                hst_msb: rate,
                hst_lsb: 0.0,
                lst_msb: rate,
                lst_lsb: 0.0,
            }),
            Method::Kelle,
        );
        let lsb = evaluate_method(
            &fig8_config().with_explicit_rates(BitFlipRates {
                hst_msb: 0.0,
                hst_lsb: rate,
                lst_msb: 0.0,
                lst_lsb: rate,
            }),
            Method::Kelle,
        );
        println!(
            "{:>12.0e} {:>14.4} {:>14.4}",
            rate, msb.fidelity.mean_kl, lsb.fidelity.mean_kl
        );
    }
}

fn figure13() {
    header("Figure 13: speedup and energy efficiency vs Original+SRAM");
    for model in [ModelKind::Llama2_7b, ModelKind::Llama3_2_3b] {
        println!("\n[{model}]");
        let summary = experiment::figure13(model, DEFAULT_N_PRIME);
        println!(
            "{:>18} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "platform", "", "LA", "TQ", "QA", "PG"
        );
        for kind in PlatformKind::all() {
            let mut speedups = Vec::new();
            let mut effs = Vec::new();
            for workload in ["LA", "TQ", "QA", "PG"] {
                let row = summary
                    .rows
                    .iter()
                    .find(|r| r.platform == kind.name() && r.workload == workload)
                    .expect("row");
                speedups.push(row.speedup);
                effs.push(row.energy_efficiency);
            }
            println!(
                "{:>18} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                kind.name(),
                "spd",
                speedups[0],
                speedups[1],
                speedups[2],
                speedups[3]
            );
            println!(
                "{:>18} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                "", "eff", effs[0], effs[1], effs[2], effs[3]
            );
        }
        println!(
            "geo-mean Kelle+eDRAM: {:.2}x speedup, {:.2}x energy efficiency",
            summary.mean_speedup("Kelle+eDRAM"),
            summary.mean_energy_efficiency("Kelle+eDRAM")
        );
        // Energy breakdown pie (Kelle+eDRAM, PG workload).
        if let Some(row) = summary
            .rows
            .iter()
            .find(|r| r.platform == "Kelle+eDRAM" && r.workload == "PG")
        {
            let e = row.report.total_energy();
            println!(
                "Kelle+eDRAM PG energy breakdown: RSA {:.0}%  KV {:.0}%  SRAM {:.0}%  DRAM {:.0}%  refresh {:.0}%",
                100.0 * e.rsa_j / e.total_j(),
                100.0 * e.kv_buffer_j / e.total_j(),
                100.0 * e.weight_buffer_j / e.total_j(),
                100.0 * e.dram_j / e.total_j(),
                100.0 * e.refresh_j / e.total_j()
            );
        }
    }
}

fn figure14() {
    header("Figure 14: comparison with other LLM accelerators (vs Jetson)");
    let summary = experiment::figure14(ModelKind::Llama2_7b, DEFAULT_N_PRIME);
    for platform in ["Jetson", "LLM.npu", "DynaX", "COMET", "Kelle"] {
        println!(
            "{:>10}: {:.2}x speedup, {:.2}x energy efficiency",
            platform,
            summary.mean_speedup(platform),
            summary.mean_energy_efficiency(platform)
        );
    }
}

fn figure15a() {
    header("Figure 15a: impact of KV-cache recomputation");
    for model in [ModelKind::Llama3_2_3b, ModelKind::Llama2_13b] {
        let (with, without) = experiment::figure15a(model);
        println!(
            "{model}: energy with recomputation {:.0} J, without {:.0} J ({:.2}x gain)",
            with,
            without,
            without / with
        );
    }
}

fn figure15b() {
    header("Figure 15b: refresh-policy / scheduler ablation (energy efficiency vs Org)");
    for (label, gain) in experiment::figure15b(ModelKind::Llama2_7b) {
        println!("{:>16}: {:.2}x", label, gain);
    }
}

fn figure16a() {
    header("Figure 16a: roofline under no / moderate / excessive recomputation");
    for (label, point) in experiment::figure16a(ModelKind::Llama2_7b) {
        println!(
            "{:>12}: intensity {:>8.2} MAC/B, performance {:>6.0} GMAC/s, {}",
            label,
            point.intensity_macs_per_byte,
            point.performance_macs_per_s / 1e9,
            if point.compute_bound {
                "compute-bound"
            } else {
                "memory-bound"
            }
        );
    }
}

fn figure16b() {
    header("Figure 16b: energy shares across input-output lengths");
    println!(
        "{:>10} {:>16} {:>18}",
        "setting", "prefill share", "decode DRAM share"
    );
    for (label, prefill, dram) in experiment::figure16b(ModelKind::Llama2_7b) {
        println!(
            "{:>10} {:>15.1}% {:>17.1}%",
            label,
            prefill * 100.0,
            dram * 100.0
        );
    }
    let _ = RefreshPolicy::Conservative; // keep the import used across figure subsets
}
