//! Tiered-memory benchmark binary: serves a fleet whose total KV demand
//! exceeds the eDRAM budget through the eDRAM → DRAM → NVMe hierarchy
//! (streams asserted identical to the unbounded reference while being
//! measured), prints a per-tier table, and emits the `BENCH_tiering.json`
//! artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_tiering -- \
//!     [--quick] [--out BENCH_tiering.json]`

use kelle_bench::tiering_perf::{self, TieringPerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_tiering.json"));

    let config = if quick {
        TieringPerfConfig::quick()
    } else {
        TieringPerfConfig::full()
    };
    let fleet = &config.scenario.fleet;
    println!(
        "tiered serving on tiered_shared_prompt ({} sessions, system {}, user {}, decode {}; \
         eDRAM {}%, DRAM {}% of demand){}",
        fleet.sessions,
        fleet.system_tokens,
        fleet.user_tokens,
        fleet.decode_len,
        config.scenario.edram_percent_of_demand,
        config.scenario.dram_percent_of_demand,
        if quick { " [quick]" } else { "" }
    );

    let report = tiering_perf::run(config);
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "fleet KV demand: {:.2} MiB (shared prefix deduplicated)",
        mib(report.total_kv_demand_bytes)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "tier", "budget MiB", "peak MiB", "settled MiB", "in MiB", "out MiB"
    );
    for row in &report.tiers {
        let budget = if row.budget_bytes == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("{:.2}", mib(row.budget_bytes))
        };
        println!(
            "{:>6} {:>12} {:>12.2} {:>14.2} {:>12.2} {:>12.2}",
            row.tier.name(),
            budget,
            mib(row.peak_bytes),
            mib(row.settled_peak_bytes),
            mib(row.in_bytes),
            mib(row.out_bytes),
        );
    }
    println!(
        "migrations: {} demotions, {} promotions, {:.2} MiB moved \
         ({:.3} ms, {:.3} mJ modelled)",
        report.metrics.demotions,
        report.metrics.promotions,
        mib(report.metrics.migrated_bytes),
        report.metrics.migration_time_s * 1e3,
        report.metrics.migration_energy_j * 1e3,
    );
    println!("(streams verified bit-identical to the unbounded run, including fault statistics)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
