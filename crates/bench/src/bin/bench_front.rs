//! Front-end benchmark binary: serves the long-lived fleet through
//! `kelle::front` on the sticky-shard executor and the work-stealing pool
//! at every configured worker count *in the same run* (streams asserted
//! identical while being timed), prints a table, and emits the
//! `BENCH_front.json` artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_front -- \
//!     [--quick] [--out BENCH_front.json]`

use kelle_bench::front_perf::{self, FrontPerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_front.json"));

    let config = if quick {
        FrontPerfConfig::quick()
    } else {
        FrontPerfConfig::full()
    };
    let fleet = &config.scenario.fleet;
    println!(
        "serving front-end on front_long_lived_fleet ({} sessions, system {}, user {}, decode {}){}",
        fleet.sessions,
        fleet.system_tokens,
        fleet.user_tokens,
        fleet.decode_len,
        if quick { " [quick]" } else { "" }
    );

    let report = front_perf::run(config);
    println!(
        "{:>8} {:>10} {:>12} {:>11} {:>14} {:>11} {:>10} {:>8}",
        "workers",
        "executor",
        "decode tok",
        "wall s",
        "decode tok/s",
        "crossings",
        "cross/tick",
        "migrated"
    );
    for row in &report.rows {
        let executor = match row.executor {
            kelle::ExecutorKind::Sticky => "sticky",
            kelle::ExecutorKind::Stealing => "stealing",
        };
        println!(
            "{:>8} {:>10} {:>12} {:>11.4} {:>14.0} {:>11} {:>10.2} {:>8}",
            row.workers,
            executor,
            row.decode_tokens,
            row.wall_seconds,
            row.decode_tokens_per_sec,
            row.queue_crossings,
            row.crossings_per_tick,
            row.sessions_migrated,
        );
    }
    println!("(streams verified bit-identical on every row; sticky crossings/tick asserted");
    println!(" strictly below stealing at every worker count)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
