//! Intra-session decode-parallelism benchmark binary: decodes one session
//! sequentially and with the per-head / row-blocked fan-out at every
//! configured worker count *in the same run* (token streams and probability
//! bits asserted identical while being timed), prints a table, and emits the
//! `BENCH_intra.json` artifact consumed by CI.
//!
//! On a single-core host every worker count measures at or below 1.0x by
//! construction; the JSON records `host_parallelism` so consumers can tell
//! the two situations apart.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_intra -- \
//!     [--quick] [--out BENCH_intra.json]`

use kelle_bench::intra_perf::{self, IntraPerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_intra.json"));

    let config = if quick {
        IntraPerfConfig::quick()
    } else {
        IntraPerfConfig::full()
    };
    println!(
        "intra-session decode parallelism (prompt {}, decode {}, repeats {}){}",
        config.prompt_len,
        config.decode_len,
        config.repeats,
        if quick { " [quick]" } else { "" }
    );

    let report = intra_perf::run(config);
    println!(
        "policy {}, dims {}x{}h c{} ffn{} v{}, host parallelism {}",
        report.policy.name(),
        report.dims.layers,
        report.dims.heads,
        report.dims.channels,
        report.dims.ffn_dim,
        report.dims.vocab,
        report.host_parallelism
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>9}",
        "workers", "decode tok", "decode s", "decode tok/s", "us/token", "speedup"
    );
    for row in &report.rows {
        let workers = row
            .workers
            .map(|w| w.to_string())
            .unwrap_or_else(|| "sequential".to_string());
        let speedup = row
            .speedup_vs_sequential
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.0} {:>12.1} {:>9}",
            workers,
            row.decode_tokens,
            row.decode_seconds,
            row.tokens_per_sec,
            row.token_latency_us,
            speedup,
        );
    }
    println!("(token streams and probability bits verified identical on every row)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
