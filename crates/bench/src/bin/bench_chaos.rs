//! Chaos-recovery benchmark binary: serves a fleet under deterministic
//! fault injection (worker panics, transient migration failures, admission
//! blips) and clean, asserts every surviving stream bit-identical while
//! measuring, prints the fault census and the recovery tail, and emits the
//! `BENCH_chaos.json` artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_chaos -- \
//!     [--quick] [--out BENCH_chaos.json]`

use kelle_bench::chaos_perf::{self, ChaosPerfConfig};
use std::path::PathBuf;

fn main() {
    chaos_perf::silence_injected_panics();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_chaos.json"));

    let config = if quick {
        ChaosPerfConfig::quick()
    } else {
        ChaosPerfConfig::full()
    };
    let fleet = &config.scenario.fleet;
    println!(
        "chaos-hardened serving on chaos_shared_prompt ({} sessions, system {}, user {}, \
         decode {}; {} workers; {}‰ panics, {}‰ migration faults, {}‰ ledger blips){}",
        fleet.sessions,
        fleet.system_tokens,
        fleet.user_tokens,
        fleet.decode_len,
        config.workers,
        config.scenario.worker_loss_per_mille,
        config.scenario.migration_fault_per_mille,
        config.scenario.ledger_blip_per_mille,
        if quick { " [quick]" } else { "" }
    );

    let report = chaos_perf::run(config);
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>14}",
        "run", "seconds", "tokens/s", "p50 tok µs", "p99 tok µs"
    );
    for row in [&report.clean, &report.chaos] {
        println!(
            "{:>6} {:>10.4} {:>14.1} {:>14.3} {:>14.3}",
            row.label, row.seconds, row.tokens_per_s, row.p50_token_us, row.p99_token_us
        );
    }
    println!(
        "faults: {} panics injected, {} steps replayed, {} sessions restored \
         ({} checkpoints, {} backoff ticks)",
        report.metrics.injected_panics,
        report.metrics.replayed_steps,
        report.metrics.restored_sessions,
        report.metrics.checkpoints_taken,
        report.metrics.backoff_ticks,
    );
    println!(
        "        {} ledger blips, {} migration retries, {} migrations abandoned, \
         {} requests lost",
        report.metrics.ledger_blips,
        report.migration_retries,
        report.failed_migrations,
        report.metrics.lost_requests,
    );
    println!("(every surviving stream verified bit-identical to the clean run)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
