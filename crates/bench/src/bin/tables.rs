//! Regenerates every *table* of the paper from the reproduction models.
//!
//! Usage: `cargo run -p kelle-bench --bin tables [-- --table <id>]`
//! where `<id>` is one of `1`, `2`, `3`, `4`, `5`, `6`, `7`, `8`, `9`,
//! `area-power`, `bandwidth`, `chaos`, `contention`, `decode_perf`, `front`,
//! `intra`, `prefix`, `serving`, `tiering`, `trace`, or `all` (default).

use kelle::accuracy::{evaluate_all_methods, evaluate_method, AccuracyConfig, Method};
use kelle::arch::InferenceWorkload;
use kelle::cache::CacheBudget;
use kelle::edram::{MemoryTechnology, RefreshIntervals, RefreshPolicy};
use kelle::experiment::{self, DEFAULT_N_PRIME};
use kelle::model::ModelKind;
use kelle::tensor::{QuantFormat, QuantizedMatrix};
use kelle::workloads::TaskKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let all = which == "all";

    if all || which == "1" {
        table1();
    }
    if all || which == "2" {
        table2();
    }
    if all || which == "3" {
        table3();
    }
    if all || which == "4" {
        table4();
    }
    if all || which == "5" {
        table5();
    }
    if all || which == "6" {
        table6();
    }
    if all || which == "7" {
        table7();
    }
    if all || which == "8" {
        table8();
    }
    if all || which == "9" {
        table9();
    }
    if all || which == "area-power" {
        area_power();
    }
    if all || which == "bandwidth" {
        bandwidth();
    }
    if all || which == "contention" {
        contention();
    }
    if all || which == "decode_perf" {
        decode_perf();
    }
    if all || which == "intra" {
        intra();
    }
    if all || which == "prefix" {
        prefix();
    }
    if all || which == "serving" {
        serving();
    }
    if all || which == "tiering" {
        tiering();
    }
    if all || which == "chaos" {
        chaos();
    }
    if all || which == "front" {
        front();
    }
    if all || which == "trace" {
        trace();
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    header("Table 1: SRAM vs eDRAM (65nm, 4MB)");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12} {:>14} {:>12}",
        "tech", "area mm2", "latency ns", "energy pJ/B", "leakage mW", "refresh mJ", "retention us"
    );
    for tech in [MemoryTechnology::Sram, MemoryTechnology::Edram] {
        println!(
            "{:>8} {:>10.1} {:>12.1} {:>14.1} {:>12.0} {:>14.2} {:>12}",
            format!("{tech:?}"),
            tech.area_mm2_4mb(),
            tech.access_latency_ns(),
            tech.access_energy_pj_per_byte(),
            tech.leakage_mw_4mb(),
            tech.refresh_energy_mj_4mb(),
            tech.retention_time_us()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string())
        );
    }
}

fn table2() {
    header("Table 2: accuracy performance of each method (fidelity-proxy scale)");
    let models = [
        ModelKind::Llama2_7b,
        ModelKind::Llama3_2_3b,
        ModelKind::Mistral7b,
    ];
    for model in models {
        println!("\n[{model}]");
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "task", "FP16", "SL", "H2O", "QR", "Kelle"
        );
        for task in [
            TaskKind::WikiText2,
            TaskKind::Pg19,
            TaskKind::ArcChallenge,
            TaskKind::ArcEasy,
            TaskKind::Piqa,
            TaskKind::Lambada,
            TaskKind::TriviaQa,
            TaskKind::Qasper,
        ] {
            let mut config = AccuracyConfig::for_task(task).with_model(model);
            config.prompts = 1;
            let results = evaluate_all_methods(&config);
            let score = |m: Method| {
                results
                    .iter()
                    .find(|r| r.method == m)
                    .map(|r| r.score)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                task.label(),
                score(Method::Fp16),
                score(Method::StreamingLlm),
                score(Method::H2o),
                score(Method::QuaRot),
                score(Method::Kelle)
            );
        }
    }
}

fn table3() {
    header("Table 3: LLaMA2-7B accuracy over cache budgets N'");
    let tasks = [TaskKind::ArcChallenge, TaskKind::ArcEasy, TaskKind::Piqa];
    let (prompt_len, _) = TaskKind::ArcEasy.surrogate_lengths();
    let budgets = [
        prompt_len,
        prompt_len / 2,
        prompt_len / 3,
        prompt_len / 4,
        8,
    ];
    println!("{:>6} {:>14}", "task", "scores for shrinking N'");
    for task in tasks {
        let mut row = format!("{:>6}", task.label());
        for &budget in &budgets {
            let cfg = AccuracyConfig::for_task(task)
                .with_budget(
                    CacheBudget::new(budget.max(4))
                        .with_recent_window((budget / 2).max(2))
                        .with_sink_tokens(2),
                )
                .with_refresh_policy(RefreshPolicy::Conservative);
            let mut cfg = cfg;
            cfg.prompts = 1;
            let result = evaluate_method(&cfg, Method::Kelle);
            row.push_str(&format!(" {:>8.2}", result.score));
        }
        println!("{row}");
    }
}

fn table4() {
    header("Table 4: uniform refresh vs 2DRP at matched average intervals");
    println!("{:>10} {:>12} {:>12}", "setting", "uniform", "2DRP");
    for (index, uniform_us) in [540.0, 1050.0, 2062.0].into_iter().enumerate() {
        let task = TaskKind::ArcEasy;
        let mut uniform_cfg =
            AccuracyConfig::for_task(task).with_refresh_policy(RefreshPolicy::Uniform(uniform_us));
        uniform_cfg.prompts = 1;
        let mut twodrp_cfg = AccuracyConfig::for_task(task).with_refresh_policy(
            RefreshPolicy::TwoDimensional(RefreshIntervals::table4_setting(index)),
        );
        twodrp_cfg.prompts = 1;
        let uniform = evaluate_method(&uniform_cfg, Method::Kelle);
        let twodrp = evaluate_method(&twodrp_cfg, Method::Kelle);
        println!(
            "{:>9}us {:>12.2} {:>12.2}",
            uniform_us, uniform.score, twodrp.score
        );
    }
}

fn table5() {
    header("Table 5: qualitative metrics (summarization / truthfulness / bias proxies)");
    println!("{:>8} {:>10} {:>10}", "task", "FP16", "Kelle");
    for task in TaskKind::table5() {
        let mut config = AccuracyConfig::for_task(task);
        config.prompts = 1;
        let fp16 = evaluate_method(&config, Method::Fp16);
        let kelle = evaluate_method(&config, Method::Kelle);
        println!(
            "{:>8} {:>10.2} {:>10.2}",
            task.label(),
            fp16.score,
            kelle.score
        );
    }
}

fn table6() {
    header("Table 6: Kelle W8A16 vs W4A8 (quantization compatibility)");
    // Weight-quantization error is modelled directly at the tensor level: the
    // W4A8 setting quantizes weights to 4 bits and the KV cache to 8 bits.
    let config_w8 = {
        let mut c = AccuracyConfig::for_task(TaskKind::ArcEasy);
        c.prompts = 1;
        c
    };
    let w8 = evaluate_method(&config_w8, Method::Kelle);
    let w4 = evaluate_method(&config_w8, Method::QuaRot);
    println!("{:>10} {:>12} {:>12}", "task", "W8A16", "W4A8");
    println!("{:>10} {:>12.2} {:>12.2}", "A-e", w8.score, w4.score);
    // Also report the raw weight-matrix quantization error at both settings.
    let model = kelle::model::SurrogateModel::new(
        kelle::model::ModelConfig::for_kind(ModelKind::Llama2_7b),
        3,
    );
    let wq = &model.weights().layers[0].wq;
    let err8 = QuantizedMatrix::quantize(wq, QuantFormat::Int8)
        .unwrap()
        .reconstruction_error(wq);
    let err4 = QuantizedMatrix::quantize(wq, QuantFormat::Int4)
        .unwrap()
        .reconstruction_error(wq);
    println!("weight reconstruction error: INT8 {err8:.5}, INT4 {err4:.5}");
}

fn table7() {
    header("Table 7: energy efficiency over KV cache budgets (PG19)");
    let budgets = [2048usize, 3500, 5250, 7000, 8750];
    for model in [ModelKind::Llama3_2_3b, ModelKind::Llama2_13b] {
        let rows = experiment::table7(model, &budgets);
        let line: Vec<String> = rows
            .iter()
            .map(|(n, g)| format!("N'={n}: {g:.2}x"))
            .collect();
        println!("{model}: {}", line.join("  "));
    }
}

fn table8() {
    header("Table 8: energy efficiency across average refresh intervals (LLaMA3.2-3B)");
    for workload in [InferenceWorkload::triviaqa(), InferenceWorkload::pg19()] {
        let rows = experiment::table8(ModelKind::Llama3_2_3b, workload);
        let line: Vec<String> = rows
            .iter()
            .map(|(us, g)| format!("{us}us: {g:.2}x"))
            .collect();
        println!("{:>4}: {}", workload.name, line.join("  "));
    }
}

fn table9() {
    header("Table 9: energy efficiency across batch sizes (LLaMA2-7B, PG19)");
    for (batch, gains) in experiment::table9(ModelKind::Llama2_7b, &[16, 4, 1]) {
        let line: Vec<String> = gains.iter().map(|(n, g)| format!("{n} {g:.2}x")).collect();
        println!("batch {:>2}: {}", batch, line.join(", "));
    }
}

fn area_power() {
    header("Accelerator area and power reconstruction (§8)");
    let (area, power) = experiment::area_power_report();
    println!(
        "on-chip area : {:.2} mm^2 (RSA {:.2}, SFU {:.2}, memories {:.2}, logic {:.2}); DRAM die {:.0} mm^2",
        area.onchip_total_mm2(),
        area.rsa_mm2,
        area.sfu_mm2,
        area.memory_mm2,
        area.logic_mm2,
        area.dram_mm2
    );
    println!(
        "on-chip power: {:.2} W (RSA {:.2}, SFU {:.2}, memories {:.2}); DRAM {:.2} W",
        power.onchip_total_w(),
        power.rsa_w,
        power.sfu_w,
        power.memory_w,
        power.dram_w
    );
}

fn bandwidth() {
    header("§8.3.7: halved eDRAM bandwidth ablation");
    for workload in [InferenceWorkload::pg19(), InferenceWorkload::triviaqa()] {
        let (full, halved) = experiment::bandwidth_ablation(ModelKind::Llama2_7b, workload);
        println!(
            "{:>4}: full bandwidth {:.2}x, halved bandwidth {:.2}x (vs Original+SRAM, N'={})",
            workload.name, full, halved, DEFAULT_N_PRIME
        );
    }
}

fn contention() {
    header("Serving contention: shared eDRAM capacity vs queue delay and spill");
    let rows =
        experiment::serving_contention(ModelKind::Llama2_7b, 6, 16, 8, &[1.0, 0.75, 0.5, 0.25]);
    println!(
        "{:>9} {:>14} {:>12} {:>11} {:>14} {:>12} {:>10}",
        "capacity", "bytes", "mean queue", "max queue", "spill MB", "energy J", "tokens"
    );
    for row in rows {
        println!(
            "{:>8.0}% {:>14} {:>12.2} {:>11} {:>14.1} {:>12.1} {:>10}",
            row.capacity_scale * 100.0,
            row.capacity_bytes,
            row.mean_queue_ticks,
            row.max_queue_ticks,
            row.spill_bytes as f64 / (1024.0 * 1024.0),
            row.hardware_energy_j,
            row.tokens_generated
        );
    }
    println!("(token streams are identical at every capacity point; only cost and queueing move)");
}

fn decode_perf() {
    header("Decode throughput: arena hot path vs pre-arena materializing baseline");
    let report = kelle_bench::decode_perf::run(kelle_bench::decode_perf::DecodePerfConfig::quick());
    println!(
        "{:>14} {:>16} {:>16} {:>9}",
        "policy", "baseline tok/s", "optimized tok/s", "speedup"
    );
    for row in &report.rows {
        println!(
            "{:>14} {:>16.1} {:>16.1} {:>8.2}x",
            row.policy.name(),
            row.baseline_tokens_per_sec,
            row.optimized_tokens_per_sec,
            row.speedup
        );
    }
    println!(
        "geomean speedup: {:.2}x on the {} workload (streams verified identical)",
        report.geomean_speedup(),
        report.workload
    );
}

fn intra() {
    header("Intra-session parallelism: single-session decode, sequential vs fan-out");
    let report = kelle_bench::intra_perf::run(kelle_bench::intra_perf::IntraPerfConfig::quick());
    println!(
        "policy {}, host parallelism {}",
        report.policy.name(),
        report.host_parallelism
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>9}",
        "workers", "decode tok", "decode s", "decode tok/s", "speedup"
    );
    for row in &report.rows {
        let workers = row
            .workers
            .map(|w| w.to_string())
            .unwrap_or_else(|| "sequential".to_string());
        let speedup = row
            .speedup_vs_sequential
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.0} {:>9}",
            workers, row.decode_tokens, row.decode_seconds, row.tokens_per_sec, speedup,
        );
    }
    println!("(token streams and probability bits are identical on every row;");
    println!(" speedup requires a multi-core host — the fan-out only moves wall-clock time)");
}

fn prefix() {
    header("Prefix sharing: shared-system-prompt fleet, with vs without sharing");
    let report = kelle_bench::prefix_perf::run(kelle_bench::prefix_perf::PrefixPerfConfig::quick());
    println!(
        "{:>8} {:>16} {:>16} {:>9} {:>14} {:>14} {:>12}",
        "sessions",
        "cold prefill tok",
        "shared pf tok",
        "speedup",
        "cold KV MB",
        "shared KV MB",
        "dedup MB"
    );
    for row in &report.rows {
        println!(
            "{:>8} {:>16} {:>16} {:>8.2}x {:>14.2} {:>14.2} {:>12.2}",
            row.sessions,
            row.baseline_prefill_tokens,
            row.shared_prefill_tokens,
            row.speedup,
            row.baseline_resident_kv_bytes as f64 / (1024.0 * 1024.0),
            row.shared_resident_kv_bytes as f64 / (1024.0 * 1024.0),
            row.deduplicated_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!("(the shared prefix is computed once and ledger-charged once per fleet;");
    println!(" token streams are verified identical on every row)");
}

fn serving() {
    header("Threaded serving: decode throughput vs worker count, shared-prompt fleet");
    let report =
        kelle_bench::serving_perf::run(kelle_bench::serving_perf::ServingPerfConfig::quick());
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>9}",
        "workers", "decode tok", "decode s", "decode tok/s", "speedup"
    );
    for row in &report.rows {
        let workers = row
            .workers
            .map(|w| w.to_string())
            .unwrap_or_else(|| "sequential".to_string());
        let speedup = row
            .speedup_vs_one_worker
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.0} {:>9}",
            workers, row.decode_tokens, row.decode_seconds, row.decode_tokens_per_sec, speedup,
        );
    }
    println!("(token streams and fault statistics are bit-identical on every row;");
    println!(" speedup requires a multi-core host — workers only move wall-clock time)");
}

fn tiering() {
    header("Tiered KV memory: eDRAM -> DRAM -> NVMe under fleet pressure");
    let report =
        kelle_bench::tiering_perf::run(kelle_bench::tiering_perf::TieringPerfConfig::quick());
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "fleet KV demand {:.2} MiB; eDRAM budget {:.2} MiB",
        mib(report.total_kv_demand_bytes),
        mib(report.tiers[0].budget_bytes)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "tier", "budget MiB", "peak MiB", "settled MiB", "in MiB", "out MiB"
    );
    for row in &report.tiers {
        let budget = if row.budget_bytes == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("{:.2}", mib(row.budget_bytes))
        };
        println!(
            "{:>6} {:>12} {:>12.2} {:>14.2} {:>12.2} {:>12.2}",
            row.tier.name(),
            budget,
            mib(row.peak_bytes),
            mib(row.settled_peak_bytes),
            mib(row.in_bytes),
            mib(row.out_bytes),
        );
    }
    println!(
        "migrations: {} demotions, {} promotions, {:.2} MiB moved ({:.3} ms, {:.3} mJ modelled)",
        report.metrics.demotions,
        report.metrics.promotions,
        mib(report.metrics.migrated_bytes),
        report.metrics.migration_time_s * 1e3,
        report.metrics.migration_energy_j * 1e3,
    );
    println!("(token streams are bit-identical to the unbounded run; only migration cost moves)");
}

fn chaos() {
    header("Chaos-hardened serving: fault injection, checkpoint/replay recovery");
    kelle_bench::chaos_perf::silence_injected_panics();
    let report = kelle_bench::chaos_perf::run(kelle_bench::chaos_perf::ChaosPerfConfig::quick());
    println!(
        "{} workers; {}‰ panics, {}‰ migration faults, {}‰ ledger blips (seeded)",
        report.config.workers,
        report.config.scenario.worker_loss_per_mille,
        report.config.scenario.migration_fault_per_mille,
        report.config.scenario.ledger_blip_per_mille
    );
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>14}",
        "run", "seconds", "tokens/s", "p50 tok µs", "p99 tok µs"
    );
    for row in [&report.clean, &report.chaos] {
        println!(
            "{:>6} {:>10.4} {:>14.1} {:>14.3} {:>14.3}",
            row.label, row.seconds, row.tokens_per_s, row.p50_token_us, row.p99_token_us
        );
    }
    println!(
        "faults: {} panics, {} replayed steps, {} restores, {} ledger blips, \
         {} migration retries, {} lost",
        report.metrics.injected_panics,
        report.metrics.replayed_steps,
        report.metrics.restored_sessions,
        report.metrics.ledger_blips,
        report.migration_retries,
        report.metrics.lost_requests,
    );
    println!("(every surviving stream verified bit-identical to the clean run)");
}

fn front() {
    header("Serving front-end: sticky-shard vs work-stealing, long-lived fleet");
    let report = kelle_bench::front_perf::run(kelle_bench::front_perf::FrontPerfConfig::quick());
    println!(
        "{:>8} {:>10} {:>12} {:>11} {:>10} {:>8} {:>6}",
        "workers", "executor", "decode tok", "crossings", "cross/tick", "migrated", "ticks"
    );
    for row in &report.rows {
        let executor = match row.executor {
            kelle::ExecutorKind::Sticky => "sticky",
            kelle::ExecutorKind::Stealing => "stealing",
        };
        println!(
            "{:>8} {:>10} {:>12} {:>11} {:>10.2} {:>8} {:>6}",
            row.workers,
            executor,
            row.decode_tokens,
            row.queue_crossings,
            row.crossings_per_tick,
            row.sessions_migrated,
            row.ticks,
        );
    }
    println!("(token streams are bit-identical on every row; the sticky shard pins");
    println!(" sessions to workers so only per-tick step results cross the queue)");
}

fn trace() {
    header("Fleet trace replay: admission-policy shootout under SLO");
    let config = kelle_bench::trace_perf::TracePerfConfig::table();
    let report = kelle_bench::trace_perf::run(config);
    println!(
        "{} sessions -> {} requests, capacity {} tokens, SLO ttft<={} tpot<={:.1}",
        report.config.trace.sessions,
        report.requests,
        report.config.capacity_tokens,
        report.config.slo.ttft_ticks,
        report.config.slo.tpot_ticks,
    );
    println!(
        "{:>22} {:>8} {:>7} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "policy", "workers", "ticks", "ttft p50", "ttft p95", "queue p95", "goodput", "tok/ktick"
    );
    for row in &report.rows {
        let slo = &row.report.slo;
        println!(
            "{:>22} {:>8} {:>7} {:>9.0} {:>9.0} {:>9.0} {:>7.1}% {:>10.1}",
            kelle_bench::trace_perf::policy_label(row.policy),
            row.workers,
            slo.ticks,
            slo.ttft.p50,
            slo.ttft.p95,
            slo.queue.p95,
            slo.goodput_fraction() * 100.0,
            slo.goodput_tokens_per_kilotick(),
        );
    }
    println!("(token streams are bit-identical on every row; per-policy SLO reports are");
    println!(" bit-identical across worker counts — latencies are scheduler ticks)");
}
