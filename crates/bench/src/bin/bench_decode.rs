//! Decode-throughput benchmark binary: measures the zero-allocation arena
//! hot path against the pre-arena materializing baseline *in the same run*
//! (so the speedup is always relative to a live baseline), prints a table,
//! and emits the `BENCH_decode.json` artifact consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_decode -- \
//!     [--quick] [--out BENCH_decode.json]`

use kelle_bench::decode_perf::{self, DecodePerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_decode.json"));

    let config = if quick {
        DecodePerfConfig::quick()
    } else {
        DecodePerfConfig::full()
    };
    println!(
        "decode throughput on edge_chatbot (prompt {}, decode {}, best of {}){}",
        config.prompt_len,
        config.decode_len,
        config.repeats,
        if quick { " [quick]" } else { "" }
    );

    let report = decode_perf::run(config);
    println!(
        "{:>14} {:>16} {:>16} {:>9}",
        "policy", "baseline tok/s", "optimized tok/s", "speedup"
    );
    for row in &report.rows {
        println!(
            "{:>14} {:>16.1} {:>16.1} {:>8.2}x",
            row.policy.name(),
            row.baseline_tokens_per_sec,
            row.optimized_tokens_per_sec,
            row.speedup
        );
    }
    println!("geomean speedup: {:.2}x", report.geomean_speedup());

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
