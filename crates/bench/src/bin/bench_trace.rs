//! Trace-replay benchmark binary: generates a deterministic fleet-scale
//! Poisson trace (heterogeneous archetypes, multi-turn sessions, nested
//! prefix hierarchy), replays it through `KelleEngine::serve` under a tight
//! KV capacity for every admission policy at every configured worker count
//! (streams and tick-denominated SLO reports asserted identical while being
//! timed), prints a table, and emits the `BENCH_trace.json` artifact
//! consumed by CI.
//!
//! Usage: `cargo run --release -p kelle-bench --bin bench_trace -- \
//!     [--quick] [--out BENCH_trace.json]`

use kelle_bench::trace_perf::{self, policy_label, TracePerfConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_trace.json"));

    let config = if quick {
        TracePerfConfig::quick()
    } else {
        TracePerfConfig::full()
    };
    println!(
        "trace replay: {} sessions, capacity {} tokens, SLO ttft<={} tpot<={:.1}{}",
        config.trace.sessions,
        config.capacity_tokens,
        config.slo.ttft_ticks,
        config.slo.tpot_ticks,
        if quick { " [quick]" } else { "" }
    );

    let report = trace_perf::run(config);
    println!(
        "{} requests, {} prompt tokens, arrival horizon {} ticks",
        report.requests, report.prompt_tokens, report.horizon_ticks
    );
    println!(
        "{:>22} {:>8} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "policy",
        "workers",
        "wall s",
        "ticks",
        "ttft p50",
        "ttft p95",
        "ttft p99",
        "queue p95",
        "goodput",
        "tok/ktick"
    );
    for row in &report.rows {
        let slo = &row.report.slo;
        println!(
            "{:>22} {:>8} {:>8.2} {:>7} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>7.1}% {:>10.1}",
            policy_label(row.policy),
            row.workers,
            row.wall_seconds,
            slo.ticks,
            slo.ttft.p50,
            slo.ttft.p95,
            slo.ttft.p99,
            slo.queue.p95,
            slo.goodput_fraction() * 100.0,
            slo.goodput_tokens_per_kilotick(),
        );
    }
    println!("(token streams verified bit-identical on every row; SLO reports verified");
    println!(" bit-identical across worker counts for each policy)");

    match report.write_json(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(err) => {
            eprintln!("failed to write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
