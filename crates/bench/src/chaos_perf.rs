//! Chaos-recovery sweep: a fleet served under deterministic fault injection
//! versus the same fleet served fault-free.
//!
//! The sweep serves the same deterministic
//! [`ChaosScenario`] fleet twice on identically configured engines — once
//! clean (the reference), once with the seeded chaos plan injecting worker
//! panics mid-tick, transient tier-migration failures and admission blips —
//! and reports:
//!
//! * the injected-fault census (panics, migration retries, abandoned
//!   migrations, ledger blips) and the recovery work it forced
//!   (checkpoints, restores, replayed steps);
//! * decode throughput and p50/p99 per-token latency for both runs — the
//!   price of recovery in tail latency;
//! * whether every stream survived bit-identical (always asserted while
//!   being measured).
//!
//! This is the sweep behind the `bench_chaos` binary (which emits
//! `BENCH_chaos.json`, gated in CI) and the `tables --table chaos` report.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::edram::TierBudgets;
use kelle::tier::TierConfig;
use kelle::workloads::ChaosScenario;
use kelle::{
    BatchOutcome, ChaosConfig, ChaosMetrics, KelleEngine, PrefixSharingConfig, SchedulerConfig,
    ServeOptions, ServeRequest,
};

/// Configuration of one chaos-recovery sweep.
#[derive(Debug, Clone)]
pub struct ChaosPerfConfig {
    /// The fleet and its fault rates.
    pub scenario: ChaosScenario,
    /// Engine seed.
    pub seed: u64,
    /// Worker threads serving the fleet.
    pub workers: usize,
    /// Replay attempts per lost decode step before the request is shed.
    pub max_retries: u32,
    /// eDRAM tier budget as a percentage of the fleet's KV demand (tiering
    /// keeps migrations flowing so migration faults have something to hit).
    pub edram_percent_of_demand: u32,
}

impl ChaosPerfConfig {
    /// The quick configuration used by CI: the acceptance-shape chaos fleet
    /// (5 % worker loss, 10 % migration faults) on 4 workers.
    pub fn quick() -> Self {
        ChaosPerfConfig {
            scenario: ChaosScenario::edge_chaos().with_ledger_blips(50),
            seed: 23,
            workers: 4,
            max_retries: 6,
            edram_percent_of_demand: 40,
        }
    }

    /// The full configuration for local benchmarking: a longer decode, so
    /// the fault budget and the recovery tail are measured over more ticks.
    pub fn full() -> Self {
        let mut config = ChaosPerfConfig::quick();
        config.scenario.fleet = config.scenario.fleet.with_decode_len(128);
        config
    }
}

/// Throughput and per-token latency of one run.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Run label (`"clean"` or `"chaos"`).
    pub label: &'static str,
    /// Wall time of the run in seconds.
    pub seconds: f64,
    /// Decode throughput in tokens per second.
    pub tokens_per_s: f64,
    /// Median inter-token latency in microseconds.
    pub p50_token_us: f64,
    /// 99th-percentile inter-token latency in microseconds — recovery
    /// replays land here.
    pub p99_token_us: f64,
}

/// A complete chaos-recovery report.
#[derive(Debug, Clone)]
pub struct ChaosPerfReport {
    /// Scenario label.
    pub workload: String,
    /// The configuration measured.
    pub config: ChaosPerfConfig,
    /// The clean reference run.
    pub clean: RunRow,
    /// The fault-injected run.
    pub chaos: RunRow,
    /// Fault-injection and recovery counters of the chaos run.
    pub metrics: ChaosMetrics,
    /// Transient migration-transfer failures retried (tiering metrics of
    /// the chaos run).
    pub migration_retries: u64,
    /// Migrations abandoned after exhausting their transfer attempts.
    pub failed_migrations: u64,
    /// Whether every stream survived bit-identical to the reference
    /// (always asserted; recorded for the JSON artifact).
    pub streams_identical: bool,
}

impl ChaosPerfReport {
    /// Serializes the report as JSON (hand-rolled: the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let fleet = &self.config.scenario.fleet;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!(
            "  \"sessions\": {}, \"system_tokens\": {}, \"user_tokens\": {}, \"decode_len\": {},\n",
            fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
        ));
        out.push_str(&format!(
            "  \"workers\": {}, \"max_retries\": {},\n",
            self.config.workers, self.config.max_retries
        ));
        out.push_str(&format!(
            "  \"worker_loss_per_mille\": {}, \"migration_fault_per_mille\": {}, \
             \"ledger_blip_per_mille\": {},\n",
            self.config.scenario.worker_loss_per_mille,
            self.config.scenario.migration_fault_per_mille,
            self.config.scenario.ledger_blip_per_mille
        ));
        out.push_str("  \"runs\": [\n");
        for (i, row) in [&self.clean, &self.chaos].into_iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"seconds\": {:.6}, \"tokens_per_s\": {:.1}, \
                 \"p50_token_us\": {:.3}, \"p99_token_us\": {:.3}}}{}\n",
                row.label,
                row.seconds,
                row.tokens_per_s,
                row.p50_token_us,
                row.p99_token_us,
                if i == 0 { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"injected_panics\": {}, \"replayed_steps\": {}, \"restored_sessions\": {}, \
             \"checkpoints_taken\": {},\n",
            self.metrics.injected_panics,
            self.metrics.replayed_steps,
            self.metrics.restored_sessions,
            self.metrics.checkpoints_taken
        ));
        out.push_str(&format!(
            "  \"ledger_blips\": {}, \"lost_requests\": {}, \"migration_retries\": {}, \
             \"failed_migrations\": {},\n",
            self.metrics.ledger_blips,
            self.metrics.lost_requests,
            self.migration_retries,
            self.failed_migrations
        ));
        out.push_str(&format!(
            "  \"streams_identical\": {}\n",
            self.streams_identical
        ));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_chaos.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

/// Installs a panic hook that silences the plan's *injected* worker panics
/// (they are caught by the pool and replayed from checkpoint) while keeping
/// the default hook for everything else.  Call once from a benchmark binary
/// before [`run`] so the fault storm does not drown the report in
/// backtraces.
pub fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if message.is_some_and(|m| m.starts_with("chaos: injected worker panic")) {
            return;
        }
        default_hook(info);
    }));
}

fn engine(config: &ChaosPerfConfig) -> KelleEngine {
    KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(config.seed)
        .workers(config.workers)
        .build()
}

fn requests_for(scenario: &ChaosScenario) -> Vec<ServeRequest> {
    scenario
        .fleet
        .prompts()
        .into_iter()
        .map(|prompt| {
            ServeRequest::builder(prompt)
                .decode_len(scenario.fleet.decode_len)
                .label("chaos-serving")
                .build()
        })
        .collect()
}

/// Serves the fleet once, timing every token, and returns the outcome with
/// its latency row.
fn timed_run(
    label: &'static str,
    engine: &KelleEngine,
    requests: Vec<ServeRequest>,
    config: SchedulerConfig,
    decode_tokens: usize,
) -> (BatchOutcome, RunRow) {
    let mut deltas_us: Vec<f64> = Vec::with_capacity(decode_tokens);
    let start = Instant::now();
    let mut last = start;
    let mut sink = |_: usize, _: usize| {
        let now = Instant::now();
        deltas_us.push(now.duration_since(last).as_secs_f64() * 1e6);
        last = now;
    };
    let outcome = engine
        .serve(
            requests,
            ServeOptions::new()
                .parallel()
                .fallible()
                .with_scheduler(config)
                .streaming(&mut sink),
        )
        .expect("the retry budget absorbs every injected fault");
    let seconds = start.elapsed().as_secs_f64();
    deltas_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |q: f64| -> f64 {
        if deltas_us.is_empty() {
            return 0.0;
        }
        let rank = ((deltas_us.len() as f64 - 1.0) * q).round() as usize;
        deltas_us[rank]
    };
    let row = RunRow {
        label,
        seconds,
        tokens_per_s: decode_tokens as f64 / seconds.max(1e-12),
        p50_token_us: percentile(0.50),
        p99_token_us: percentile(0.99),
    };
    (outcome, row)
}

/// Runs the chaos-recovery sweep: the clean reference, then the injected
/// run.
///
/// # Panics
///
/// Panics if any injected fault changes a token stream, fault statistic or
/// hardware report, if a request is lost outright (the retry budget is sized
/// so recovery always succeeds), or if the chaos run injected nothing.
pub fn run(config: ChaosPerfConfig) -> ChaosPerfReport {
    let fleet = &config.scenario.fleet;
    let probe = engine(&config);
    let shared = probe.kv_footprint_bytes(fleet.system_tokens);
    let private = probe.kv_footprint_bytes(fleet.user_tokens + fleet.decode_len);
    let demand = shared + private * fleet.sessions as u64;
    let edram = ((demand as u128 * config.edram_percent_of_demand as u128) / 100).max(1) as u64;
    let tiering = TierConfig::with_edram_budget(edram)
        .with_budgets(TierBudgets::with_edram(edram).with_dram(demand));
    let base = SchedulerConfig::default().with_tiering(tiering);
    let decode_tokens = fleet.sessions * fleet.decode_len;

    let clean_engine = engine(&config);
    assert!(clean_engine.publish_prefix(&fleet.system_prompt()));
    let (reference, clean) = timed_run(
        "clean",
        &clean_engine,
        requests_for(&config.scenario),
        base,
        decode_tokens,
    );

    let plan = ChaosConfig::default()
        .with_seed(config.scenario.chaos_seed)
        .with_worker_panics(config.scenario.worker_loss_per_mille)
        .with_migration_faults(config.scenario.migration_fault_per_mille)
        .with_ledger_blips(config.scenario.ledger_blip_per_mille)
        .with_max_retries(config.max_retries);
    let chaos_engine = engine(&config);
    assert!(chaos_engine.publish_prefix(&fleet.system_prompt()));
    let (injected, chaos) = timed_run(
        "chaos",
        &chaos_engine,
        requests_for(&config.scenario),
        base.with_chaos(plan),
        decode_tokens,
    );

    let streams_identical =
        reference
            .outcomes
            .iter()
            .zip(injected.outcomes.iter())
            .all(|(a, b)| {
                a.generated == b.generated && a.faults == b.faults && a.hardware == b.hardware
            });
    assert!(streams_identical, "chaos recovery changed a token stream");
    let metrics = injected.chaos;
    assert!(
        metrics.injected_panics > 0 || metrics.ledger_blips > 0,
        "the chaos run must actually inject faults"
    );
    assert_eq!(metrics.lost_requests, 0, "the retry budget must hold");

    ChaosPerfReport {
        workload: "chaos_shared_prompt".to_string(),
        config,
        clean,
        chaos,
        metrics,
        migration_retries: injected.tiering.migration_retries,
        failed_migrations: injected.tiering.failed_migrations,
        streams_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle::workloads::SharedPromptScenario;

    fn tiny() -> ChaosPerfConfig {
        ChaosPerfConfig {
            scenario: ChaosScenario::new(
                SharedPromptScenario::new(3, 24, 4).with_decode_len(6),
                120,
                200,
            )
            .with_ledger_blips(100),
            seed: 5,
            workers: 2,
            max_retries: 8,
            edram_percent_of_demand: 40,
        }
    }

    #[test]
    fn chaos_sweep_recovers_every_stream() {
        let report = run(tiny());
        assert!(report.streams_identical);
        assert!(report.metrics.injected_panics > 0);
        assert!(report.metrics.checkpoints_taken > 0);
        assert_eq!(report.metrics.lost_requests, 0);
        assert!(report.clean.tokens_per_s > 0.0);
        assert!(report.chaos.tokens_per_s > 0.0);
        assert!(report.chaos.p99_token_us >= report.chaos.p50_token_us);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(tiny());
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"chaos_shared_prompt\""));
        assert!(json.contains("\"label\": \"clean\""));
        assert!(json.contains("\"label\": \"chaos\""));
        assert!(json.contains("\"injected_panics\": "));
        assert!(json.contains("\"streams_identical\": true"));
    }
}
