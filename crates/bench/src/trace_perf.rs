//! Fleet-scale trace replay and admission-policy shootout.
//!
//! The sweep generates one deterministic [`Trace`] (thousands of Poisson
//! sessions, heterogeneous archetypes, multi-turn conversations, nested
//! prefix hierarchies), publishes the hierarchy, and replays the trace
//! through `KelleEngine::serve` under a KV capacity tight enough to queue —
//! once per admission policy (fcfs / shortest-prompt-first / capacity-fit)
//! at every configured worker count.  Each row reports the wall time and
//! the scheduler's [`SloReport`]: TTFT/TPOT/queue-time percentiles and
//! goodput under the configured [`SloSpec`].
//!
//! Two determinism claims are asserted *while being measured*:
//!
//! * token streams are bit-identical on **every** row — admission policy,
//!   capacity and worker count never change a generated token;
//! * the full [`SloReport`] is bit-identical **across worker counts** for a
//!   fixed policy — latencies are scheduler ticks, not wall time.
//!
//! This is the sweep behind the `bench_trace` binary (which emits
//! `BENCH_trace.json`, gated in CI) and the `tables --table trace` report.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::workloads::{PrefixHierarchy, SessionArchetype, Trace, TraceConfig, TraceEngine};
use kelle::{
    AdmissionPolicy, BatchReport, KelleEngine, PrefixSharingConfig, SchedulerConfig, ServeOptions,
    ServeRequest, SloReport, SloSpec,
};

/// Configuration of one trace-replay sweep.
#[derive(Debug, Clone)]
pub struct TracePerfConfig {
    /// The trace to generate and replay.
    pub trace: TraceConfig,
    /// Worker counts to replay at (every policy runs at each count).
    pub worker_counts: Vec<usize>,
    /// Admission policies in the shootout.
    pub policies: Vec<AdmissionPolicy>,
    /// Shared KV capacity, denominated as the footprint of this many cached
    /// tokens — small enough to queue the fleet, large enough to make
    /// progress.
    pub capacity_tokens: usize,
    /// The serving objective goodput is judged against.
    pub slo: SloSpec,
    /// Engine seed.
    pub seed: u64,
}

impl TracePerfConfig {
    /// The mixture every built-in configuration replays: mostly short chat
    /// turns, some multi-turn conversations with think time, a tail of
    /// long-form requests.
    fn archetypes() -> Vec<SessionArchetype> {
        vec![
            SessionArchetype::new("chat-short", 7, (1, 3)).with_decode_tokens((2, 3)),
            SessionArchetype::new("chat-multi", 2, (1, 3))
                .with_decode_tokens((2, 3))
                .with_turns((2, 2), (2, 6)),
            SessionArchetype::new("longform", 1, (4, 8)).with_decode_tokens((4, 6)),
        ]
    }

    fn sized(sessions: usize, worker_counts: Vec<usize>) -> Self {
        TracePerfConfig {
            trace: TraceConfig::poisson(sessions, 0.25)
                .with_hierarchy(PrefixHierarchy::new(4, 2, 2).with_users(2, 2))
                .with_archetypes(Self::archetypes()),
            worker_counts,
            policies: vec![
                AdmissionPolicy::Fcfs,
                AdmissionPolicy::ShortestPromptFirst,
                AdmissionPolicy::CapacityFit,
            ],
            capacity_tokens: 48,
            slo: SloSpec::new(25, 1.5),
            seed: 13,
        }
    }

    /// The quick configuration used by CI: the acceptance shape — a
    /// 1000-session Poisson trace, all three admission policies, worker
    /// counts 1 and 2.
    pub fn quick() -> Self {
        Self::sized(1000, vec![1, 2])
    }

    /// The full configuration for local benchmarking: a larger fleet and a
    /// wider worker sweep.
    pub fn full() -> Self {
        Self::sized(2000, vec![1, 2, 4])
    }

    /// A scaled-down trace for the `tables --table trace` report: the same
    /// overloaded shape at a fraction of the fleet.
    pub fn table() -> Self {
        let mut config = Self::sized(200, vec![1, 2]);
        config.capacity_tokens = 32;
        config
    }
}

/// One measured replay (one admission policy × one worker count).
#[derive(Debug, Clone)]
pub struct TracePerfRow {
    /// Admission policy of the replay.
    pub policy: AdmissionPolicy,
    /// Worker threads behind the engine.
    pub workers: usize,
    /// End-to-end wall time of the replay in seconds.
    pub wall_seconds: f64,
    /// Tokens generated (identical on every row by design).
    pub generated_tokens: u64,
    /// Wall-clock decode throughput: `generated_tokens / wall_seconds`.
    pub tokens_per_sec: f64,
    /// Every metric block of the replay's batch, SLO report included.
    pub report: BatchReport,
    /// Whether this row's token streams matched the first measured run
    /// (always asserted; recorded for the JSON artifact).
    pub streams_identical: bool,
    /// Whether this row's `SloReport` matched the same policy at the first
    /// worker count (always asserted; recorded for the JSON artifact).
    pub slo_identical: bool,
}

/// A complete trace-replay report.
#[derive(Debug, Clone)]
pub struct TracePerfReport {
    /// Workload label.
    pub workload: String,
    /// The configuration measured.
    pub config: TracePerfConfig,
    /// Trace shape: requests generated from the sessions.
    pub requests: usize,
    /// Trace shape: total prompt tokens across requests.
    pub prompt_tokens: usize,
    /// Trace shape: last arrival tick.
    pub horizon_ticks: u64,
    /// One row per policy × worker count, policies outermost.
    pub rows: Vec<TracePerfRow>,
}

/// Stable label for an admission policy in reports.
pub fn policy_label(policy: AdmissionPolicy) -> &'static str {
    match policy {
        AdmissionPolicy::Fcfs => "fcfs",
        AdmissionPolicy::ShortestPromptFirst => "shortest-prompt-first",
        AdmissionPolicy::CapacityFit => "capacity-fit",
    }
}

impl TracePerfReport {
    /// Serializes the report as JSON (hand-rolled: the workspace has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!(
            "  \"sessions\": {}, \"requests\": {}, \"prompt_tokens\": {}, \
             \"horizon_ticks\": {}, \"capacity_tokens\": {},\n",
            self.config.trace.sessions,
            self.requests,
            self.prompt_tokens,
            self.horizon_ticks,
            self.config.capacity_tokens,
        ));
        out.push_str(&format!(
            "  \"slo\": {{\"ttft_ticks\": {}, \"tpot_ticks\": {:.3}}},\n",
            self.config.slo.ttft_ticks, self.config.slo.tpot_ticks,
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let slo = &row.report.slo;
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"workers\": {}, \"wall_seconds\": {:.6}, \
                 \"generated_tokens\": {}, \"tokens_per_sec\": {:.2}, \"ticks\": {}, \
                 \"shed\": {}, \
                 \"ttft\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}, \
                 \"tpot\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, \
                 \"queue\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}}, \
                 \"goodput_requests\": {}, \"goodput_fraction\": {:.4}, \
                 \"goodput_tokens_per_kilotick\": {:.2}, \
                 \"streams_identical\": {}, \"slo_identical\": {}}}{}\n",
                policy_label(row.policy),
                row.workers,
                row.wall_seconds,
                row.generated_tokens,
                row.tokens_per_sec,
                slo.ticks,
                slo.shed,
                slo.ttft.p50,
                slo.ttft.p95,
                slo.ttft.p99,
                slo.tpot.p50,
                slo.tpot.p95,
                slo.tpot.p99,
                slo.queue.p50,
                slo.queue.p95,
                slo.queue.p99,
                slo.queue.max,
                slo.goodput_requests,
                slo.goodput_fraction(),
                slo.goodput_tokens_per_kilotick(),
                row.streams_identical,
                row.slo_identical,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_trace.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

/// Builds an engine with the trace's hierarchy published (three nested
/// levels from one recording pass per leaf, deduplicated across leaves).
fn engine_with_hierarchy(config: &TracePerfConfig, trace: &Trace, workers: usize) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .workers(workers)
        .seed(config.seed)
        .build();
    let published: usize = trace
        .publications
        .iter()
        .map(|p| engine.publish_prefix_hierarchy(&p.tokens, &p.boundaries))
        .sum();
    assert!(
        published > 0,
        "the hierarchy must publish at least one level"
    );
    engine
}

fn requests_for(trace: &Trace) -> Vec<ServeRequest> {
    trace
        .requests
        .iter()
        .map(|r| {
            ServeRequest::builder(r.prompt.clone())
                .decode_len(r.decode_len)
                .arrival_tick(r.arrival_tick)
                .label("trace-replay")
                .build()
        })
        .collect()
}

/// Replays the trace once, timing the whole serve and collecting every
/// `(request, token)` streaming event in commit order.
fn replay(
    config: &TracePerfConfig,
    trace: &Trace,
    policy: AdmissionPolicy,
    workers: usize,
) -> (Vec<(usize, usize)>, SloReport, BatchReport, f64) {
    let engine = engine_with_hierarchy(config, trace, workers);
    let requests = requests_for(trace);
    let scheduler = SchedulerConfig::default()
        .with_kv_capacity_bytes(engine.kv_footprint_bytes(config.capacity_tokens))
        .with_admission(policy)
        .with_slo(config.slo);
    let mut events = Vec::with_capacity(trace.total_decode_tokens());
    let mut sink = |request: usize, token: usize| events.push((request, token));
    let start = Instant::now();
    let outcome = engine
        .serve(
            requests,
            ServeOptions::new()
                .parallel()
                .with_scheduler(scheduler)
                .streaming(&mut sink),
        )
        .expect("infallible options cannot fail");
    let wall_s = start.elapsed().as_secs_f64();
    (events, outcome.slo.clone(), outcome.report(), wall_s)
}

/// Runs the shootout: every admission policy at every worker count.
///
/// # Panics
///
/// Panics if any row's token streams differ from the first measured run
/// (admission and worker counts must never change a token), or if a
/// policy's `SloReport` differs across worker counts (tick-denominated
/// latencies must not see threads).
pub fn run(config: TracePerfConfig) -> TracePerfReport {
    let trace = TraceEngine::new(config.trace.clone()).generate();
    let mut reference: Option<Vec<(usize, usize)>> = None;
    let mut rows = Vec::new();
    for &policy in &config.policies {
        let mut policy_slo: Option<SloReport> = None;
        for &workers in &config.worker_counts {
            let (events, slo, report, wall_s) = replay(&config, &trace, policy, workers);
            // Streams are compared as per-request token sequences: the
            // *interleaving* of commits legitimately differs across
            // admission policies (requests start at different ticks), the
            // tokens of each request must not.
            let mut streams = vec![Vec::new(); trace.requests.len()];
            for (request, token) in &events {
                streams[*request].push(*token);
            }
            let streams_identical = match &reference {
                None => {
                    reference = Some(events);
                    true
                }
                Some(expected) => {
                    let mut expected_streams = vec![Vec::new(); trace.requests.len()];
                    for (request, token) in expected {
                        expected_streams[*request].push(*token);
                    }
                    expected_streams == streams
                }
            };
            assert!(
                streams_identical,
                "{policy:?} at {workers} workers changed a token stream"
            );
            let slo_identical = match &policy_slo {
                None => {
                    policy_slo = Some(slo.clone());
                    true
                }
                Some(expected) => expected == &slo,
            };
            assert!(
                slo_identical,
                "{policy:?} SLO report changed between worker counts"
            );
            rows.push(TracePerfRow {
                policy,
                workers,
                wall_seconds: wall_s,
                generated_tokens: slo.total_tokens,
                tokens_per_sec: slo.total_tokens as f64 / wall_s.max(f64::MIN_POSITIVE),
                report,
                streams_identical,
                slo_identical,
            });
        }
    }
    TracePerfReport {
        workload: "trace_fleet_poisson".to_string(),
        requests: trace.requests.len(),
        prompt_tokens: trace.total_prompt_tokens(),
        horizon_ticks: trace.horizon_ticks,
        config,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TracePerfConfig {
        let mut config = TracePerfConfig::sized(24, vec![1, 2]);
        config.capacity_tokens = 24;
        config
    }

    #[test]
    fn shootout_asserts_stream_and_slo_identity_while_measuring() {
        let report = run(tiny());
        assert_eq!(report.rows.len(), 6, "3 policies x 2 worker counts");
        assert!(report.rows.iter().all(|r| r.streams_identical));
        assert!(report.rows.iter().all(|r| r.slo_identical));
        let generated = report.rows[0].generated_tokens;
        assert!(generated > 0);
        assert!(report.rows.iter().all(|r| r.generated_tokens == generated));
        // Within a policy the SLO report is identical across worker counts.
        for pair in report.rows.chunks(2) {
            assert_eq!(pair[0].policy, pair[1].policy);
            assert_eq!(pair[0].report.slo, pair[1].report.slo);
        }
        // Every row actually judged the whole fleet.
        for row in &report.rows {
            assert_eq!(row.report.slo.requests as usize, report.requests);
            assert_eq!(row.report.slo.shed, 0);
        }
    }

    #[test]
    fn json_carries_the_slo_percentiles() {
        let report = run(tiny());
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"trace_fleet_poisson\""));
        assert!(json.contains("\"policy\": \"fcfs\""));
        assert!(json.contains("\"policy\": \"shortest-prompt-first\""));
        assert!(json.contains("\"policy\": \"capacity-fit\""));
        assert!(json.contains("\"ttft\""));
        assert!(json.contains("\"tpot\""));
        assert!(json.contains("\"queue\""));
        assert!(json.contains("\"goodput_fraction\""));
        assert!(json.contains("\"streams_identical\": true"));
        assert!(json.contains("\"slo_identical\": true"));
    }
}
