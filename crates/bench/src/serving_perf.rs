//! Threaded-serving sweep: aggregate decode throughput vs. worker count on
//! the shared-prompt fleet.
//!
//! Per worker count the sweep serves the *same* deterministic
//! [`ParallelScenario`] fleet on identically configured engines — first
//! sequentially (the classic single-threaded scheduler, the reference), then
//! through the `kelle::parallel` worker pool at each configured count — and
//! reports, per side:
//!
//! * aggregate decode tokens/s (fleet decode tokens / decode wall time,
//!   prefill timed separately);
//! * speedup versus the 1-worker pool (the protocol running on one worker,
//!   so the ratio isolates parallelism from protocol overhead);
//! * single-session per-token decode latency (p50/p99): one session served
//!   alone through the same execution mode, each scheduler tick timed — the
//!   interactive-latency complement to the fleet-throughput number.
//!
//! Token streams are asserted identical between every worker count and the
//! sequential reference while being timed — the speedup can never come from
//! computing something different.  This is the sweep behind the
//! `bench_serving` binary (which emits `BENCH_serving.json`, gated in CI)
//! and the `tables --table serving` report.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use kelle::workloads::ParallelScenario;
use kelle::{
    BatchOutcome, BatchScheduler, KelleEngine, PrefixSharingConfig, ServeRequest, WorkerPool,
};

/// Configuration of one threaded-serving sweep.
#[derive(Debug, Clone)]
pub struct ServingPerfConfig {
    /// The fleet and the worker counts to sweep.
    pub scenario: ParallelScenario,
    /// Engine seed.
    pub seed: u64,
}

impl ServingPerfConfig {
    /// The quick configuration used by CI: the acceptance shape — the
    /// 8-session × 256-token shared-prompt fleet at 1, 2 and 4 workers.
    pub fn quick() -> Self {
        ServingPerfConfig {
            scenario: ParallelScenario::edge_fleet(),
            seed: 23,
        }
    }

    /// The full configuration for local benchmarking: a longer decode and a
    /// wider worker sweep.
    pub fn full() -> Self {
        let mut scenario = ParallelScenario::edge_fleet().with_worker_counts(vec![1, 2, 4, 8]);
        scenario.fleet = scenario.fleet.with_decode_len(128);
        ServingPerfConfig { scenario, seed: 23 }
    }
}

/// One measured serving run (sequential reference or one worker count).
#[derive(Debug, Clone)]
pub struct ServingPerfRow {
    /// Worker threads (`None` for the sequential single-threaded reference).
    pub workers: Option<usize>,
    /// Fleet decode tokens generated (identical on every row by design).
    pub decode_tokens: usize,
    /// Wall time of the prefill/admission phase in seconds.
    pub prefill_seconds: f64,
    /// Wall time of the decode phase in seconds.
    pub decode_seconds: f64,
    /// Aggregate decode throughput: `decode_tokens / decode_seconds`.
    pub decode_tokens_per_sec: f64,
    /// Throughput relative to the baseline row — the 1-worker pool when the
    /// sweep includes worker count 1 (so the ratio isolates parallelism from
    /// protocol overhead), otherwise the sequential reference.  `None` on
    /// the sequential reference row itself.
    pub speedup_vs_one_worker: Option<f64>,
    /// Whether this row's token streams matched the sequential reference
    /// (always asserted; recorded for the JSON artifact).
    pub streams_identical: bool,
    /// Median per-token decode latency of a single session served alone
    /// through this row's execution mode, in microseconds.
    pub token_latency_p50_us: f64,
    /// 99th-percentile single-session per-token decode latency in
    /// microseconds.
    pub token_latency_p99_us: f64,
}

/// A complete threaded-serving report.
#[derive(Debug, Clone)]
pub struct ServingPerfReport {
    /// Scenario label.
    pub workload: String,
    /// The configuration measured.
    pub config: ServingPerfConfig,
    /// The sequential reference followed by one row per worker count.
    pub rows: Vec<ServingPerfRow>,
}

impl ServingPerfReport {
    /// The speedup baseline: the 1-worker pool row when the sweep measured
    /// one, otherwise the sequential reference row.
    fn baseline_tps(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == Some(1))
            .or_else(|| self.rows.iter().find(|r| r.workers.is_none()))
            .map(|r| r.decode_tokens_per_sec)
    }

    /// Serializes the report as JSON (hand-rolled: the workspace has no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        let fleet = &self.config.scenario.fleet;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!(
            "  \"sessions\": {}, \"system_tokens\": {}, \"user_tokens\": {}, \"decode_len\": {},\n",
            fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let workers = row
                .workers
                .map(|w| w.to_string())
                .unwrap_or_else(|| "\"sequential\"".to_string());
            let speedup = row
                .speedup_vs_one_worker
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "    {{\"workers\": {}, \"decode_tokens\": {}, \
                 \"prefill_seconds\": {:.6}, \"decode_seconds\": {:.6}, \
                 \"decode_tokens_per_sec\": {:.2}, \"speedup_vs_one_worker\": {}, \
                 \"streams_identical\": {}, \
                 \"token_latency_p50_us\": {:.2}, \"token_latency_p99_us\": {:.2}}}{}\n",
                workers,
                row.decode_tokens,
                row.prefill_seconds,
                row.decode_seconds,
                row.decode_tokens_per_sec,
                speedup,
                row.streams_identical,
                row.token_latency_p50_us,
                row.token_latency_p99_us,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON artifact (`BENCH_serving.json`).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

fn engine(config: &ServingPerfConfig) -> KelleEngine {
    KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(config.seed)
        .build()
}

fn requests_for(scenario: &ParallelScenario) -> Vec<ServeRequest> {
    scenario
        .fleet
        .prompts()
        .into_iter()
        .map(|prompt| {
            ServeRequest::builder(prompt)
                .decode_len(scenario.fleet.decode_len)
                .label("parallel-serving")
                .build()
        })
        .collect()
}

/// Serves the fleet once, timing the prefill (submit) and decode phases
/// separately.  `workers == None` drives the classic single-threaded
/// scheduler; `Some(n)` drives it through an `n`-worker pool.
fn serve_fleet(config: &ServingPerfConfig, workers: Option<usize>) -> (BatchOutcome, f64, f64) {
    let engine = engine(config);
    assert!(
        engine.publish_prefix(&config.scenario.fleet.system_prompt()),
        "publication must succeed"
    );
    let requests = requests_for(&config.scenario);
    match workers {
        None => {
            let mut scheduler = BatchScheduler::new(&engine);
            let start = Instant::now();
            for request in requests {
                scheduler.submit(request);
            }
            let prefill_s = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let outcome = scheduler.run_to_completion();
            (outcome, prefill_s, start.elapsed().as_secs_f64())
        }
        Some(workers) => std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, workers);
            let mut scheduler = BatchScheduler::new(&engine);
            let start = Instant::now();
            for request in requests {
                scheduler.submit_with(request, &mut pool);
            }
            let prefill_s = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let outcome = scheduler.run_to_completion_streaming_with(&mut pool, |_, _| {});
            (outcome, prefill_s, start.elapsed().as_secs_f64())
        }),
    }
}

/// Serves the fleet's first session *alone* through the given execution
/// mode, timing every scheduler tick — one tick is one token for a single
/// session, so the samples are per-token decode latencies in seconds.
fn single_session_token_latencies(config: &ServingPerfConfig, workers: Option<usize>) -> Vec<f64> {
    let engine = engine(config);
    assert!(
        engine.publish_prefix(&config.scenario.fleet.system_prompt()),
        "publication must succeed"
    );
    let request = requests_for(&config.scenario)
        .into_iter()
        .next()
        .expect("the fleet has at least one session");
    match workers {
        None => {
            let mut scheduler = BatchScheduler::new(&engine);
            scheduler.submit(request);
            let mut latencies = Vec::new();
            while !scheduler.is_idle() {
                let start = Instant::now();
                let events = scheduler.step();
                let elapsed = start.elapsed().as_secs_f64();
                latencies.extend(std::iter::repeat_n(elapsed, events.len()));
            }
            latencies
        }
        Some(workers) => std::thread::scope(|scope| {
            let mut pool = WorkerPool::start(scope, workers);
            let mut scheduler = BatchScheduler::new(&engine);
            scheduler.submit_with(request, &mut pool);
            let mut latencies = Vec::new();
            while !scheduler.is_idle() {
                let start = Instant::now();
                let events = scheduler.step_with(&mut pool);
                let elapsed = start.elapsed().as_secs_f64();
                latencies.extend(std::iter::repeat_n(elapsed, events.len()));
            }
            latencies
        }),
    }
}

/// Nearest-rank percentile of the latency samples, in microseconds.
fn percentile_us(latencies: &[f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)] * 1e6
}

/// Runs the full sweep: sequential reference first, then every worker count.
///
/// # Panics
///
/// Panics if any worker count generates a different token stream than the
/// sequential reference (it cannot, by the parallel-equivalence guarantee —
/// this is the benchmark's self-check).
pub fn run(config: ServingPerfConfig) -> ServingPerfReport {
    let decode_tokens = config.scenario.total_decode_tokens();
    let (reference, ref_prefill_s, ref_decode_s) = serve_fleet(&config, None);
    let ref_latencies = single_session_token_latencies(&config, None);

    let mut rows = vec![ServingPerfRow {
        workers: None,
        decode_tokens,
        prefill_seconds: ref_prefill_s,
        decode_seconds: ref_decode_s,
        decode_tokens_per_sec: decode_tokens as f64 / ref_decode_s.max(f64::MIN_POSITIVE),
        speedup_vs_one_worker: None,
        streams_identical: true,
        token_latency_p50_us: percentile_us(&ref_latencies, 50.0),
        token_latency_p99_us: percentile_us(&ref_latencies, 99.0),
    }];
    for &workers in &config.scenario.worker_counts {
        let (outcome, prefill_s, decode_s) = serve_fleet(&config, Some(workers));
        let latencies = single_session_token_latencies(&config, Some(workers));
        let streams_identical = reference
            .outcomes
            .iter()
            .zip(outcome.outcomes.iter())
            .all(|(a, b)| a.generated == b.generated && a.faults == b.faults);
        assert!(
            streams_identical,
            "worker count {workers} changed a token stream"
        );
        rows.push(ServingPerfRow {
            workers: Some(workers),
            decode_tokens,
            prefill_seconds: prefill_s,
            decode_seconds: decode_s,
            decode_tokens_per_sec: decode_tokens as f64 / decode_s.max(f64::MIN_POSITIVE),
            speedup_vs_one_worker: None,
            streams_identical,
            token_latency_p50_us: percentile_us(&latencies, 50.0),
            token_latency_p99_us: percentile_us(&latencies, 99.0),
        });
    }

    let mut report = ServingPerfReport {
        workload: "parallel_shared_prompt".to_string(),
        config,
        rows,
    };
    if let Some(base) = report.baseline_tps() {
        for row in &mut report.rows {
            if row.workers.is_some() {
                row.speedup_vs_one_worker = Some(row.decode_tokens_per_sec / base);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kelle::workloads::SharedPromptScenario;

    #[test]
    fn sweep_asserts_identical_streams_and_reports_speedups() {
        let config = ServingPerfConfig {
            scenario: ParallelScenario::new(
                SharedPromptScenario::new(3, 24, 4).with_decode_len(3),
                vec![1, 2],
            ),
            seed: 5,
        };
        let report = run(config);
        // Sequential reference + one row per worker count.
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].workers, None);
        assert!(report.rows.iter().all(|r| r.streams_identical));
        assert!(report.rows.iter().all(|r| r.decode_tokens == 9));
        // Per-token latency percentiles are measured on every row and
        // ordered (p99 >= p50 > 0).
        assert!(report
            .rows
            .iter()
            .all(|r| r.token_latency_p99_us >= r.token_latency_p50_us
                && r.token_latency_p50_us > 0.0));
        let one = report.rows.iter().find(|r| r.workers == Some(1)).unwrap();
        assert!((one.speedup_vs_one_worker.unwrap() - 1.0).abs() < 1e-9);
        assert!(report.rows[2].speedup_vs_one_worker.unwrap() > 0.0);
    }

    #[test]
    fn sweep_without_a_one_worker_row_baselines_on_the_sequential_row() {
        let config = ServingPerfConfig {
            scenario: ParallelScenario::new(
                SharedPromptScenario::new(2, 16, 4).with_decode_len(2),
                vec![2],
            ),
            seed: 5,
        };
        let report = run(config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].workers.is_none());
        assert!(report.rows[0].speedup_vs_one_worker.is_none());
        assert!(
            report.rows[1].speedup_vs_one_worker.unwrap() > 0.0,
            "the sequential row serves as the fallback baseline"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = ServingPerfReport {
            workload: "parallel_shared_prompt".into(),
            config: ServingPerfConfig::quick(),
            rows: vec![
                ServingPerfRow {
                    workers: None,
                    decode_tokens: 256,
                    prefill_seconds: 0.5,
                    decode_seconds: 1.0,
                    decode_tokens_per_sec: 256.0,
                    speedup_vs_one_worker: None,
                    streams_identical: true,
                    token_latency_p50_us: 120.0,
                    token_latency_p99_us: 340.5,
                },
                ServingPerfRow {
                    workers: Some(4),
                    decode_tokens: 256,
                    prefill_seconds: 0.5,
                    decode_seconds: 0.25,
                    decode_tokens_per_sec: 1024.0,
                    speedup_vs_one_worker: Some(4.0),
                    streams_identical: true,
                    token_latency_p50_us: 130.0,
                    token_latency_p99_us: 410.0,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"parallel_shared_prompt\""));
        assert!(json.contains("\"workers\": \"sequential\""));
        assert!(json.contains("\"speedup_vs_one_worker\": 4.0000"));
        assert!(json.contains("\"speedup_vs_one_worker\": null"));
        assert!(json.contains("\"token_latency_p50_us\": 120.00"));
        assert!(json.contains("\"token_latency_p99_us\": 410.00"));
    }
}
