//! Design-space exploration: sweep the Kelle design knobs — KV budget `N'`,
//! refresh policy, eDRAM bandwidth and batch size — and print how the
//! speedup / energy-efficiency gains move, reproducing the shape of the
//! paper's ablation studies (§8.3) in one run.
//!
//! Run with `cargo run --example design_space`.

use kelle::arch::{InferenceWorkload, Platform, PlatformKind};
use kelle::edram::{RefreshIntervals, RefreshPolicy};
use kelle::experiment;
use kelle::model::{ModelConfig, ModelKind};

fn main() {
    let model_kind = ModelKind::Llama2_7b;
    let model = ModelConfig::for_kind(model_kind);

    // 1. KV budget sweep (Table 7).
    println!("KV budget sweep (PG19, energy-efficiency gain over Original+SRAM):");
    for (n, gain) in experiment::table7(model_kind, &[1024, 2048, 3500, 5250, 7000, 8750]) {
        println!("  N' = {:5}  ->  {:.2}x", n, gain);
    }

    // 2. Refresh-policy sweep (Fig. 15b flavour).
    println!("\nrefresh policy sweep (PG19, Kelle hardware, energy per run):");
    let workload = InferenceWorkload::pg19();
    for (label, policy) in [
        ("Org (45us)", RefreshPolicy::Conservative),
        ("Uniform 360us", RefreshPolicy::Uniform(360.0)),
        ("Uniform 1.05ms", RefreshPolicy::Uniform(1050.0)),
        (
            "2DRP",
            RefreshPolicy::TwoDimensional(RefreshIntervals::paper_default()),
        ),
    ] {
        let mut platform = Platform::preset(PlatformKind::KelleEdram);
        platform.refresh_policy = policy;
        let report = platform.simulate(&model, &workload, Some(2048));
        println!(
            "  {:15} {:9.0} J   (refresh share {:4.1}%, avg failure rate {:.1e})",
            label,
            report.total_energy_j(),
            report.total_energy().refresh_share() * 100.0,
            policy
                .bit_flip_rates(&kelle::edram::RetentionModel::default())
                .average()
        );
    }

    // 3. eDRAM bandwidth ablation (§8.3.7).
    let (full, halved) = experiment::bandwidth_ablation(model_kind, InferenceWorkload::triviaqa());
    println!(
        "\neDRAM bandwidth ablation (TriviaQA): full 256 GB/s {:.2}x, halved 128 GB/s {:.2}x",
        full, halved
    );

    // 4. Batch-size sweep (Table 9).
    println!("\nbatch-size sweep (PG19, energy-efficiency gain over Original+SRAM):");
    for (batch, gains) in experiment::table9(model_kind, &[16, 4, 1]) {
        let line: Vec<String> = gains
            .iter()
            .map(|(name, gain)| format!("{name} {gain:.2}x"))
            .collect();
        println!("  batch {:2}: {}", batch, line.join(", "));
    }

    // 5. Continuous-batching concurrency sweep (serving API).
    println!(
        "\nconcurrent-session sweep (continuous batching, 12-token prompts, 8-token decodes):"
    );
    for sessions in [1usize, 4, 8] {
        let summary = experiment::serving_batch(model_kind, sessions, 12, 8);
        println!(
            "  {:2} sessions: {:4} tokens, {:9.1} J total, {:6.2} s mean request latency",
            summary.sessions,
            summary.tokens_generated,
            summary.hardware_energy_j,
            summary.mean_request_latency_s
        );
    }
}
