//! Shared eDRAM capacity arbitration: several tenants contend for one KV
//! budget, queueing behind admission control and spilling to DRAM when their
//! decode growth oversubscribes the device — while every tenant's token
//! stream stays byte-identical to uncontended serving.
//!
//! Run with `cargo run --example edge_contention`.

use kelle::{AdmissionPolicy, KelleEngine, SchedulerConfig, ServeOptions, ServeRequest};

fn main() {
    let engine = KelleEngine::builder().seed(11).build();

    // Five tenants with mixed prompt sizes and decode budgets.
    let requests: Vec<ServeRequest> = vec![
        ServeRequest::new(vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8], 6),
        ServeRequest::new(vec![2, 7, 1, 8, 2, 8, 1, 8], 8),
        ServeRequest::new(vec![6, 6, 6, 1, 2], 4),
        ServeRequest::new(vec![1, 61, 80, 33, 98, 11, 7, 4, 9, 2], 6),
        ServeRequest::new(vec![9, 9], 5),
    ];

    // Size the shared budget from the batch itself: the total full-scale KV
    // footprint every request would hold at completion.
    let total: u64 = requests
        .iter()
        .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
        .sum();
    println!(
        "total final KV footprint of the batch: {:.1} MB (full hardware scale)",
        total as f64 / (1024.0 * 1024.0)
    );

    // Reference run: capacity holds everyone, nobody queues.
    let ample = engine
        .serve(
            requests.clone(),
            ServeOptions::new()
                .with_scheduler(SchedulerConfig::default().with_kv_capacity_bytes(total)),
        )
        .expect("infallible options cannot fail");

    for (label, scale, admission) in [
        ("ample capacity, fcfs", 1.0, AdmissionPolicy::Fcfs),
        ("half capacity, fcfs", 0.5, AdmissionPolicy::Fcfs),
        (
            "half capacity, shortest-prompt-first",
            0.5,
            AdmissionPolicy::ShortestPromptFirst,
        ),
        (
            "half capacity, capacity-fit",
            0.5,
            AdmissionPolicy::CapacityFit,
        ),
    ] {
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(((total as f64) * scale) as u64)
            .with_admission(admission);
        let batch = engine
            .serve(requests.clone(), ServeOptions::new().with_scheduler(config))
            .expect("infallible options cannot fail");

        println!("\n=== {label} ===");
        println!(
            "peak residency {:6.1} MB | spill {:6.1} MB | queue ticks total {} / max {}",
            batch.contention.peak_residency_bytes as f64 / (1024.0 * 1024.0),
            batch.contention.spill_bytes as f64 / (1024.0 * 1024.0),
            batch.contention.total_queue_ticks,
            batch.contention.max_queue_ticks,
        );
        for (i, timing) in batch.contention.per_request.iter().enumerate() {
            println!(
                "  request {i}: queued {:>2} ticks, admitted t{:>2}, finished t{:>2}, \
                 granted {}, spill {:5.1} MB",
                timing.queue_ticks,
                timing.admitted_tick,
                timing.finished_tick,
                timing
                    .granted_bytes
                    .map(|b| format!("{:5.1} MB", b as f64 / (1024.0 * 1024.0)))
                    .unwrap_or_else(|| "whole eDRAM".to_string()),
                timing.spill_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        println!(
            "energy {:8.1} J (ample: {:8.1} J)",
            batch.stats.hardware_energy_j, ample.stats.hardware_energy_j
        );

        // The equivalence guarantee: contention never changes tokens.
        for (a, b) in ample.outcomes.iter().zip(batch.outcomes.iter()) {
            assert_eq!(a.generated, b.generated);
        }
        println!("token streams identical to the uncontended run ✓");
    }
}
