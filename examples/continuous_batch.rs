//! Continuous batching: serve several concurrent requests through the
//! round-robin scheduler, streaming tokens as they are produced, and compare
//! the aggregate against sequential serving.
//!
//! Run with `cargo run --example continuous_batch`.

use kelle::{CachePolicy, KelleEngine, ServeOptions, ServeRequest};

fn main() {
    let engine = KelleEngine::builder().batch(1).build();

    // Four tenants with different prompts, decode budgets and policies.
    let requests = vec![
        ServeRequest::builder(vec![3, 1, 4, 1, 5, 9])
            .decode_len(6)
            .build(),
        ServeRequest::builder(vec![2, 7, 1, 8])
            .decode_len(10)
            .policy(CachePolicy::Full)
            .build(),
        ServeRequest::builder(vec![6, 6, 6])
            .decode_len(4)
            .policy(CachePolicy::StreamingLlm)
            .build(),
        ServeRequest::builder(vec![1, 61, 80, 33, 98])
            .decode_len(8)
            .seed(1234)
            .build(),
    ];

    println!("streaming tokens (request:token), scheduler step by step:");
    let mut line = String::new();
    let mut sink = |request: usize, token: usize| {
        line.push_str(&format!("{request}:{token} "));
    };
    let batch = engine
        .serve(requests, ServeOptions::new().streaming(&mut sink))
        .expect("infallible options cannot fail");
    println!("  {line}");

    println!("\nper-request outcomes:");
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        println!(
            "  request {}: {} tokens, {} evictions, {:6.2} s, {:7.1} J",
            i,
            outcome.generated.len(),
            outcome.cache.evictions,
            outcome.hardware.total_latency_s(),
            outcome.hardware.total_energy_j()
        );
    }
    println!(
        "\naggregate: {} requests, {} tokens, {:.1} J (equals the sum of sequential serves)",
        batch.stats.requests, batch.stats.tokens_generated, batch.stats.hardware_energy_j
    );
}
