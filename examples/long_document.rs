//! Long-document generation scenario (the PG19-style workload of the paper):
//! decode thousands of tokens from a book-length context and watch how the
//! KV-cache policies diverge in both fidelity and hardware cost.
//!
//! Run with `cargo run --example long_document`.

use kelle::accuracy::{evaluate_method, AccuracyConfig, Method};
use kelle::arch::{InferenceWorkload, Platform, PlatformKind};
use kelle::model::ModelKind;
use kelle::workloads::TaskKind;

fn main() {
    // Functional fidelity on the PG19-like long-generation task.
    println!("PG19-like long generation, LLaMA2-7B surrogate:");
    let mut config = AccuracyConfig::for_task(TaskKind::Pg19);
    config.prompts = 2;
    for method in Method::all() {
        let result = evaluate_method(&config, method);
        println!(
            "  {:6} (policy {:13}) ppl-proxy-score {:6.2}  top-1 agreement {:5.1}%  mean KL {:.4}",
            method.name(),
            method.policy().name(),
            result.score,
            result.fidelity.top1_agreement * 100.0,
            result.fidelity.mean_kl
        );
    }

    // Hardware cost of generating an 8192-token continuation (Fig. 13 PG point).
    println!("\nhardware cost of the PG19 workload (context 512, decode 8192, batch 16):");
    let model = kelle::model::ModelConfig::for_kind(ModelKind::Llama2_7b);
    let workload = InferenceWorkload::pg19();
    let baseline = Platform::preset(PlatformKind::OriginalSram).simulate(&model, &workload, None);
    for kind in PlatformKind::all() {
        let n_prime = match kind {
            PlatformKind::OriginalSram | PlatformKind::OriginalEdram => None,
            _ => Some(2048),
        };
        let report = Platform::preset(kind).simulate(&model, &workload, n_prime);
        let energy = report.total_energy();
        println!(
            "  {:16} {:8.0} s  {:9.0} J  refresh {:4.1}%  dram {:4.1}%  speedup {:4.2}x  energy {:4.2}x",
            kind.name(),
            report.total_latency_s(),
            report.total_energy_j(),
            energy.refresh_share() * 100.0,
            energy.dram_share() * 100.0,
            report.speedup_vs(&baseline),
            report.energy_efficiency_vs(&baseline)
        );
    }
}
