//! Threaded serving front-end: the shared-prompt fleet decoded through the
//! `kelle::parallel` worker pool at several worker counts.  Per-session
//! prefill/decode compute fans out across workers while admission, the
//! capacity ledger and the prefix store stay on the coordinating thread —
//! so the streams, fault statistics and batch metrics printed here are
//! asserted bit-identical to single-threaded serving at every worker count.
//!
//! Run with `cargo run --release --example parallel_serving`.

use kelle::workloads::ParallelScenario;
use kelle::{KelleEngine, PrefixSharingConfig, ServeOptions, ServeRequest};
use std::time::Instant;

fn main() {
    let scenario = ParallelScenario::edge_fleet();
    let fleet = &scenario.fleet;
    println!(
        "{} sessions x ({}-token system prompt + {}-token user turn), {} decode steps",
        fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
    );

    let requests: Vec<ServeRequest> = fleet
        .prompts()
        .into_iter()
        .map(|prompt| ServeRequest::new(prompt, fleet.decode_len))
        .collect();

    // Single-threaded reference.
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .build();
    assert!(engine.publish_prefix(&fleet.system_prompt()));
    let start = Instant::now();
    let reference = engine
        .serve(requests.clone(), ServeOptions::new())
        .expect("infallible options cannot fail");
    println!(
        "\nsequential:          {:>8.2}s, {} tokens",
        start.elapsed().as_secs_f64(),
        reference.stats.tokens_generated
    );

    for &workers in &scenario.worker_counts {
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .workers(workers)
            .build();
        assert!(engine.publish_prefix(&fleet.system_prompt()));
        let start = Instant::now();
        let outcome = engine
            .serve(requests.clone(), ServeOptions::new().parallel())
            .expect("infallible options cannot fail");
        let elapsed = start.elapsed().as_secs_f64();

        // The whole point: worker counts only move wall-clock time.
        for (a, b) in reference.outcomes.iter().zip(outcome.outcomes.iter()) {
            assert_eq!(a.generated, b.generated, "streams must be bit-identical");
            assert_eq!(a.faults, b.faults, "fault statistics must match");
        }
        assert_eq!(reference.stats, outcome.stats);
        assert_eq!(reference.contention, outcome.contention);
        assert_eq!(reference.prefix, outcome.prefix);
        println!(
            "{workers} worker(s):         {elapsed:>8.2}s, streams/metrics identical to sequential"
        );
    }
    println!("\n(speedup needs a multi-core host; determinism holds everywhere)");
}
