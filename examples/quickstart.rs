//! Quickstart: build the default Kelle system with the engine builder, serve
//! one prompt, and print the functional and hardware outcomes.
//!
//! Run with `cargo run --example quickstart`.

use kelle::{CachePolicy, KelleEngine};

fn main() {
    // The builder defaults emulate LLaMA2-7B on the Kelle+eDRAM platform with
    // AERP cache management and the 2DRP refresh policy; every knob can be
    // overridden fluently.
    let engine = KelleEngine::builder().policy(CachePolicy::Aerp).build();

    let prompt: Vec<usize> = vec![12, 7, 101, 45, 7, 7, 33, 250, 19, 4];
    let outcome = engine.serve_one(&prompt, 24);

    println!("generated tokens : {:?}", outcome.generated);
    println!(
        "cache occupancy  : {} KV entries + {} recompute entries, {} evictions",
        outcome.cache.kv_entries, outcome.cache.recompute_entries, outcome.cache.evictions
    );
    println!(
        "recompute share  : {:.1}% of attended entries",
        outcome.trace.recompute_fraction() * 100.0
    );
    println!(
        "hardware (batch {}): {:.2} s latency, {:.1} J energy",
        engine.config().batch,
        outcome.hardware.total_latency_s(),
        outcome.hardware.total_energy_j()
    );
    let energy = outcome.hardware.total_energy();
    println!(
        "energy breakdown : DRAM {:.0}%, KV buffer {:.0}%, refresh {:.0}%, compute {:.0}%",
        100.0 * energy.dram_j / energy.total_j(),
        100.0 * energy.kv_buffer_j / energy.total_j(),
        100.0 * energy.refresh_j / energy.total_j(),
        100.0 * energy.rsa_j / energy.total_j(),
    );
}
