//! Cross-session prefix KV sharing: N chatbot sessions front their prompts
//! with the same system prompt, which is published once as a shared prefix
//! segment — every session replays it (zero model compute, arena storage
//! adopted zero-copy under non-evicting policies, ledger bytes charged once)
//! and computes only its own user suffix.  Token streams are asserted
//! byte-identical to a sharing-oblivious engine.
//!
//! Run with `cargo run --example shared_prompt`.

use kelle::workloads::SharedPromptScenario;
use kelle::{CachePolicy, KelleEngine, PrefixSharingConfig, ServeOptions, ServeRequest};

fn main() {
    let scenario = SharedPromptScenario::new(8, 96, 12).with_decode_len(8);
    let system = scenario.system_prompt();
    let requests: Vec<ServeRequest> = scenario
        .prompts()
        .into_iter()
        .map(|prompt| ServeRequest::new(prompt, scenario.decode_len))
        .collect();
    println!(
        "{} sessions, {}-token shared system prompt + {}-token user turns",
        scenario.sessions, scenario.system_tokens, scenario.user_tokens
    );

    // The full policy never evicts, so hit sessions keep reading the
    // published arenas zero-copy for their whole lifetime (evicting
    // policies privatize copy-on-evict instead; the ledger dedup below is
    // policy-independent).
    let cold_engine = KelleEngine::builder().policy(CachePolicy::Full).build();
    let cold = cold_engine
        .serve(requests.clone(), ServeOptions::new())
        .expect("infallible options cannot fail");
    let cold_prefilled: usize = cold.outcomes.iter().map(|o| o.prefilled_tokens).sum();

    // Sharing: publish once, then every session hits.
    let engine = KelleEngine::builder()
        .policy(CachePolicy::Full)
        .prefix_sharing(PrefixSharingConfig::enabled())
        .build();
    assert!(engine.publish_prefix(&system));
    let batch = engine
        .serve(requests, ServeOptions::new())
        .expect("infallible options cannot fail");
    let prefilled: usize = batch.outcomes.iter().map(|o| o.prefilled_tokens).sum();

    println!("\nwithout sharing: {cold_prefilled} prompt tokens computed");
    println!(
        "with sharing:    {} computed by sessions + {} once at publication",
        prefilled,
        system.len()
    );
    println!(
        "prefill skipped: {} tokens across {} hits",
        batch.prefix.hit_tokens, batch.prefix.hit_requests
    );
    println!(
        "ledger:          prefix charged once ({:.1} MB resident), {:.1} MB deduplicated",
        batch.prefix.shared_bytes as f64 / (1024.0 * 1024.0),
        batch.prefix.deduplicated_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "peak residency:  {:.1} MB vs {:.1} MB without sharing",
        batch.contention.peak_residency_bytes as f64 / (1024.0 * 1024.0),
        cold.contention.peak_residency_bytes as f64 / (1024.0 * 1024.0),
    );
    let store = engine.prefix_stats();
    println!(
        "store:           {} published boundary ({} tokens), {} hits / {} misses",
        store.published, store.published_tokens, store.hits, store.misses
    );

    // Surrogate-level zero-copy: per-session cache stats split shared vs
    // private bytes (the first outcome stands for all).
    let stats = &batch.outcomes[0].cache;
    println!(
        "session cache:   {} B shared (adopted segment) + {} B private = {} B",
        stats.shared_bytes, stats.private_bytes, stats.bytes_fp16
    );

    // The equivalence guarantee: sharing never changes a token.
    for (a, b) in cold.outcomes.iter().zip(batch.outcomes.iter()) {
        assert_eq!(a.generated, b.generated);
    }
    println!("\ntoken streams identical to the sharing-oblivious run ✓");
}
