//! Async serving front-end: the long-lived fleet submitted through
//! `kelle::front`'s non-blocking submit/poll API, with a bounded admission
//! queue, per-stream backpressure, a mid-stream cancellation and a graceful
//! drain — served once on the sticky-shard executor and once on the
//! work-stealing pool, with identical token streams and very different
//! queue traffic.
//!
//! Run with `cargo run --release --example async_serving`.

use kelle::front::{ExecutorKind, FrontConfig, StreamPoll, SubmitError, TokenStream};
use kelle::workloads::FrontScenario;
use kelle::{KelleEngine, PrefixSharingConfig, ServeRequest, ShedReason};

fn main() {
    let scenario = FrontScenario::long_lived_fleet();
    let fleet = &scenario.fleet;
    println!(
        "{} long-lived sessions x ({}-token system prompt + {}-token turn), {} decode steps",
        fleet.sessions, fleet.system_tokens, fleet.user_tokens, fleet.decode_len
    );

    let mut reference: Option<Vec<Vec<usize>>> = None;
    for kind in [ExecutorKind::Sticky, ExecutorKind::Stealing] {
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .workers(2)
            .build();
        assert!(engine.publish_prefix(&fleet.system_prompt()));

        let config = FrontConfig::default()
            .with_executor(kind)
            .with_queue_capacity(8)
            .with_stream_capacity(4);
        let (streams, outcome) = engine.front(config, |front| {
            // Non-blocking submission with typed backpressure.
            let mut handles: Vec<TokenStream> = Vec::new();
            for prompt in fleet.prompts() {
                let request = ServeRequest::new(prompt, fleet.decode_len);
                match front.submit(request.clone()) {
                    Ok(stream) => handles.push(stream),
                    Err(SubmitError::QueueFull { waiting }) => {
                        println!("  queue full ({waiting} waiting) - blocking submit");
                        handles.push(front.submit_blocking(request).expect("slot frees"));
                    }
                    Err(SubmitError::Draining) => unreachable!("not draining yet"),
                }
            }
            // Cancel one session mid-stream; its partial output survives.
            front.pump();
            front.pump();
            let victim = handles.last().expect("fleet is non-empty").request();
            assert!(front.cancel(victim));
            // Poll every stream to the end (recv pumps ticks cooperatively).
            let streams: Vec<Vec<usize>> = handles
                .iter()
                .map(|stream| {
                    let mut tokens = Vec::new();
                    loop {
                        match front.recv(stream) {
                            StreamPoll::Token(token) => tokens.push(token),
                            StreamPoll::Finished { shed } => {
                                if stream.request() == victim {
                                    assert_eq!(shed, Some(ShedReason::Cancelled));
                                } else {
                                    assert_eq!(shed, None);
                                }
                                break;
                            }
                            StreamPoll::Pending => unreachable!("recv pumps until terminal"),
                        }
                    }
                    tokens
                })
                .collect();
            // Graceful shutdown: terminal, releases every byte.
            front.drain();
            assert_eq!(front.scheduler().ledger().live_bytes(), 0);
            streams
        });

        match &reference {
            None => reference = Some(streams),
            Some(expected) => {
                assert_eq!(
                    expected, &streams,
                    "executor protocols must not change token bits"
                );
            }
        }
        println!(
            "{:<9} {:>7} queue crossings over {} ticks ({:.2}/tick), {} tokens",
            format!("{kind:?}:"),
            outcome.parallel.queue_crossings,
            outcome.parallel.ticks,
            outcome.parallel.crossings_per_tick(),
            outcome.stats.tokens_generated,
        );
    }
    println!("\n(identical streams; the sticky shard just moves far less across threads)");
}
