//! Edge chatbot scenario: a multi-turn conversation served on an edge device,
//! comparing the Kelle system against the SRAM baseline turn by turn.
//!
//! This mirrors the motivation of §1: interactive serving where each turn
//! appends to the conversation, the KV cache keeps growing, and the device
//! must stay within a tight latency/energy envelope.  Here every turn is
//! served through a persistent [`kelle::Session`], so only the new tokens are
//! pre-filled; see `edge_chatbot_multiturn.rs` for a side-by-side comparison
//! against the old re-prefill-everything strategy.
//!
//! Run with `cargo run --example edge_chatbot`.

use kelle::arch::{InferenceWorkload, Platform, PlatformKind};
use kelle::cache::CacheBudget;
use kelle::edram::RefreshPolicy;
use kelle::model::{ModelConfig, ModelKind};
use kelle::KelleEngine;

fn main() {
    // Functional side: serve three conversation turns through one session.
    let engine = KelleEngine::builder()
        .model(ModelKind::Llama3_2_3b)
        .budget(
            CacheBudget::new(48)
                .with_recent_window(16)
                .with_sink_tokens(2),
        )
        .refresh_policy(RefreshPolicy::two_dimensional_default())
        .batch(1)
        .build();

    let turns: [&[usize]; 3] = [
        &[5, 17, 99, 23, 4, 87, 15, 3],
        &[44, 12, 7, 7, 201, 16],
        &[150, 33, 2, 91, 64, 8, 19],
    ];
    let mut session = engine.open_session();
    for (i, turn) in turns.iter().enumerate() {
        let outcome = session.turn(turn, 16);
        println!(
            "turn {}: {} new prompt tokens pre-filled ({} total context) -> {} generated, {} evictions, {:.1}% recomputed",
            i + 1,
            outcome.prefilled_tokens,
            outcome.context_len,
            outcome.generated.len(),
            outcome.cache.evictions,
            outcome.trace.recompute_fraction() * 100.0
        );
    }
    let stats = engine.stats();
    println!(
        "session: {} turns, {} tokens, modelled energy {:.1} J",
        stats.requests, stats.tokens_generated, stats.hardware_energy_j
    );

    // Hardware side: what does a long chat session cost on each platform?
    let model = ModelConfig::for_kind(ModelKind::Llama3_2_3b);
    let workload = InferenceWorkload::new("chat-session", 512, 2048, 1);
    let baseline = Platform::preset(PlatformKind::OriginalSram).simulate(&model, &workload, None);
    println!("\nsingle-user (batch 1) chat session, LLaMA3.2-3B:");
    for kind in PlatformKind::all() {
        let report = Platform::preset(kind).simulate(&model, &workload, Some(1024));
        println!(
            "  {:16} {:7.1} s  {:8.1} J  ({:.2}x speedup, {:.2}x energy efficiency)",
            kind.name(),
            report.total_latency_s(),
            report.total_energy_j(),
            report.speedup_vs(&baseline),
            report.energy_efficiency_vs(&baseline)
        );
    }
}
