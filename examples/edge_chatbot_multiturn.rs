//! Multi-turn variant of the edge chatbot: quantifies what session-level KV
//! reuse buys over the old strategy of re-pre-filling the whole conversation
//! on every turn.
//!
//! Both strategies serve the same five-turn conversation on the same engine
//! configuration.  The session pre-fills only each turn's new tokens; the
//! re-prefill strategy issues an independent request per turn whose prompt is
//! the entire conversation so far, as `KelleEngine::serve_one` forced before the
//! session API existed.
//!
//! Run with `cargo run --example edge_chatbot_multiturn`.

use kelle::cache::CacheBudget;
use kelle::model::ModelKind;
use kelle::{CachePolicy, KelleEngine};

fn main() {
    let build_engine = || {
        KelleEngine::builder()
            .model(ModelKind::Llama3_2_3b)
            .policy(CachePolicy::Aerp)
            .budget(
                CacheBudget::new(48)
                    .with_recent_window(16)
                    .with_sink_tokens(2),
            )
            .batch(1)
            .build()
    };

    let turns: [&[usize]; 5] = [
        &[5, 17, 99, 23, 4, 87, 15, 3],
        &[44, 12, 7, 7, 201, 16],
        &[150, 33, 2, 91, 64, 8, 19],
        &[9, 9, 77, 140, 6],
        &[201, 5, 63, 18, 27, 31],
    ];
    let decode_len = 16;

    // Strategy A: one persistent session, KV state reused across turns.
    let session_engine = build_engine();
    let mut session = session_engine.open_session();
    let mut session_prefilled = 0usize;
    println!("session serving (prefill = new tokens only):");
    for (i, turn) in turns.iter().enumerate() {
        let outcome = session.turn(turn, decode_len);
        session_prefilled += outcome.prefilled_tokens;
        println!(
            "  turn {}: prefilled {:3} tokens, context {:3}, latency {:6.2} s",
            i + 1,
            outcome.prefilled_tokens,
            outcome.context_len,
            outcome.hardware.total_latency_s()
        );
    }
    let session_stats = session_engine.stats();

    // Strategy B: re-prefill the whole conversation each turn (the pre-session
    // serving model).  The conversation replayed is the session's own context
    // so both strategies process identical token streams.
    let replay_engine = build_engine();
    let full_context = session.context().to_vec();
    let mut replay_prefilled = 0usize;
    let mut boundary = 0usize;
    println!("\nre-prefill serving (prefill = whole conversation each turn):");
    for (i, turn) in turns.iter().enumerate() {
        // The conversation up to and including this turn's prompt: everything
        // the session had processed when this turn's decode began.
        boundary += turn.len();
        let prompt = &full_context[..boundary];
        let outcome = replay_engine.serve_one(prompt, decode_len);
        replay_prefilled += prompt.len();
        println!(
            "  turn {}: prefilled {:3} tokens, latency {:6.2} s",
            i + 1,
            prompt.len(),
            outcome.hardware.total_latency_s()
        );
        boundary += decode_len;
    }
    let replay_stats = replay_engine.stats();

    println!(
        "\nprefill work:  session {session_prefilled} tokens vs re-prefill {replay_prefilled} tokens ({:.1}x less)",
        replay_prefilled as f64 / session_prefilled.max(1) as f64
    );
    println!(
        "modelled energy: session {:.1} J vs re-prefill {:.1} J",
        session_stats.hardware_energy_j, replay_stats.hardware_energy_j
    );
}
