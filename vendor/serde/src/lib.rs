//! Offline stand-in for the real `serde` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! `serde` surface the repo actually uses — `use serde::{Serialize,
//! Deserialize}` plus the derives — is provided locally.  The traits are
//! markers with blanket implementations; no serialization format is shipped,
//! and none is needed by the reproduction (reports are printed, not
//! round-tripped).  Swapping back to the real serde is a manifest-only change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}
