//! Offline stand-in for the real `serde_derive` crate.
//!
//! The workspace builds in environments without crates.io access, so the
//! serialization derives must resolve locally.  The sibling `serde` stub
//! provides blanket implementations of its marker traits, which makes an
//! empty derive expansion sufficient: `#[derive(Serialize, Deserialize)]`
//! stays valid on every type without generating any code.  The derives
//! register the `serde` helper attribute (like the real crate does), so
//! field annotations such as `#[serde(default)]` parse and are ignored.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the blanket impl in
/// the `serde` stub already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the blanket impl
/// in the `serde` stub already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
