//! Offline stand-in for the real `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benches use —
//! [`Criterion`], [`Bencher`], benchmark groups, `criterion_group!` /
//! `criterion_main!` — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery.  Behaviour mirrors the real harness's
//! two modes: under `cargo bench` (cargo passes `--bench`) each benchmark runs
//! `sample_size` timed iterations and prints mean time per iteration; under
//! `cargo test` each benchmark body runs once as a smoke test.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point configuring and running benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Configures the per-sample measurement time; accepted for API
    /// compatibility and ignored by the stand-in.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, name: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let iterations = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            iterations,
            elapsed_ns: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test bench {name} ... ok");
        } else {
            let per_iter = bencher.elapsed_ns / iterations.max(1) as f64;
            println!("bench {name:50} {:>12.0} ns/iter", per_iter);
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, &mut f);
        self
    }

    /// Sets the sample size for the group (applies to the whole harness in
    /// the stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Runs and times the body of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f`, calling it once per configured iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }
}

/// Identifier helper mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Builds an id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("probe", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 1);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
