//! Offline stand-in for the real `rand_chacha` crate.
//!
//! Implements a genuine ChaCha12 block generator (Bernstein's ChaCha with 12
//! rounds, the variant the workspace asks for) behind the local `rand` stub's
//! traits.  The keystream is not bit-identical to the real crate's — the
//! 64-bit seed expansion differs — but it is a proper ChaCha stream:
//! deterministic per seed, decorrelated across seeds, and of full statistical
//! quality for the reproduction's Monte-Carlo uses.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha12 random-number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key-schedule state: constants, 256-bit key, counter, 96-bit nonce.
    state: [u32; 16],
    /// Buffered keystream words from the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

const ROUNDS: usize = 12;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step used to expand a 64-bit seed into the 256-bit key.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for pair in 0..4 {
            let word = splitmix64(&mut mix);
            state[4 + 2 * pair] = word as u32;
            state[5 + 2 * pair] = (word >> 32) as u32;
        }
        // Counter starts at zero; nonce derived from the seed as well.
        let nonce = splitmix64(&mut mix);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha12Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

/// Alias with 8 rounds in the real crate; here it shares the 12-round core.
pub type ChaCha8Rng = ChaCha12Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
