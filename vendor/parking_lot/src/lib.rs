//! Offline stand-in for the real `parking_lot` crate, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: `Mutex` and `RwLock`
//! with parking_lot's panic-free locking signatures (`lock()` returns the
//! guard directly).  A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's behaviour of not poisoning at all.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_updates() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
