//! Offline stand-in for the real `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` inner attribute,
//! `prop_assert!` / `prop_assert_eq!`, range strategies over integer and
//! float types, and `proptest::collection::vec`.  Instead of shrinking and
//! adaptive case generation, each property runs a fixed number of cases drawn
//! from a deterministic per-test random stream (seeded by the test name), so
//! failures are exactly reproducible run-to-run.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many sampled cases each property executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving the sampled cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator whose seed is derived from a test name, so every
    /// property gets its own reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value source for one property argument.
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a property-level condition (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-level equality (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts property-level inequality (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in crate::collection::vec(0.0f32..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }
    }

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
