//! Offline stand-in for the real `rand` crate.
//!
//! Provides the exact subset the workspace uses: the [`RngCore`] /
//! [`SeedableRng`] generator traits and the [`Rng`] extension trait with
//! `gen` / `gen_range` / `gen_bool`.  Value distributions match the real
//! crate's `Standard` conventions (full-range integers, `[0, 1)` floats), so
//! downstream sampling code (Box-Muller, inverse-CDF Zipf, Bernoulli) behaves
//! identically; only the underlying bit streams differ.

#![warn(missing_docs)]

use std::ops::Range;

/// Core interface of a random-number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator with `rng.gen()`, following the
/// real crate's `Standard` distribution conventions.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (as in the real crate).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (as in the real crate).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds over a half-open `Range`.
pub trait UniformSample: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit: f32 = StandardSample::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit: f64 = StandardSample::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
