#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Chaos-hardening acceptance suite: deterministic fault injection
//! (`kelle::chaos`) must leave every surviving token stream, per-step trace,
//! probability-bearing fault statistics and per-request hardware outcomes
//! **bit-identical** to a fault-free run — for all five cache policies,
//! both decode-parallelism axes, every worker count, with tiering enabled so
//! transient migration faults fire alongside worker panics and admission
//! blips.  Shedding (deadlines, queue timeouts, `cancel`, `drain`) and the
//! typed [`ServeError::WorkerLost`] exit must release every byte they held.
//!
//! Like the parallel and tiering suites, the CI determinism gate runs this
//! file at explicit worker counts via `KELLE_TEST_WORKERS` (comma-separated,
//! default {1, 2, 4}) and chaos seeds via `KELLE_CHAOS_SEEDS` (default
//! {7, 11, 23}).

use kelle::tier::TierConfig;
use kelle::{
    BatchOutcome, BatchScheduler, CachePolicy, ChaosConfig, KelleEngine, ParallelAxis,
    PrefixSharingConfig, SchedulerConfig, ServeError, ServeRequest, ShedReason,
};
use proptest::prelude::*;

/// Worker counts under test: `KELLE_TEST_WORKERS` or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Fault-plan seeds under test: `KELLE_CHAOS_SEEDS` or {7, 11, 23} by
/// default.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("KELLE_CHAOS_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad KELLE_CHAOS_SEEDS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![7, 11, 23],
    }
}

/// Asserts the functional and hardware observables of two batches are
/// bit-identical, request by request.  Queueing metrics are *not* compared:
/// recovery replays and ledger blips delay ticks by design, without touching
/// any stream.
fn assert_streams_identical(a: &BatchOutcome, b: &BatchOutcome, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: request count");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.generated, y.generated, "{label}: stream of request {i}");
        assert_eq!(x.trace, y.trace, "{label}: trace of request {i}");
        assert_eq!(x.cache, y.cache, "{label}: cache stats of request {i}");
        assert_eq!(x.faults, y.faults, "{label}: fault stats of request {i}");
        assert_eq!(x.hardware, y.hardware, "{label}: hardware of request {i}");
        assert_eq!(x.shed, y.shed, "{label}: shed reason of request {i}");
        assert_eq!(
            (x.prefilled_tokens, x.prefix_hit_tokens),
            (y.prefilled_tokens, y.prefix_hit_tokens),
            "{label}: prefill accounting of request {i}"
        );
    }
    assert_eq!(a.stats.requests, b.stats.requests, "{label}: request tally");
    assert_eq!(
        a.stats.tokens_generated, b.stats.tokens_generated,
        "{label}: token tally"
    );
}

fn shared_prefix() -> Vec<usize> {
    (0..24).map(|i| (i * 7 + 5) % 512).collect()
}

/// One request per cache policy riding the shared prefix, with staggered
/// decode lengths, plus a non-prefix straggler.
fn policy_mix() -> Vec<ServeRequest> {
    let prefix = shared_prefix();
    let mut requests: Vec<ServeRequest> = CachePolicy::all()
        .into_iter()
        .enumerate()
        .map(|(i, policy)| {
            let mut prompt = prefix.clone();
            prompt.extend([100 + i, 200 + i, 300 + i]);
            ServeRequest::builder(prompt)
                .decode_len(3 + i)
                .policy(policy)
                .build()
        })
        .collect();
    requests.push(
        ServeRequest::builder(vec![9, 8, 7, 6, 5, 4])
            .decode_len(4)
            .build(),
    );
    requests
}

fn sharing_engine(seed: u64, workers: usize) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(seed)
        .workers(workers)
        .build();
    assert!(engine.publish_prefix(&shared_prefix()));
    engine
}

/// A hostile-but-recoverable fault plan: every class injects, the replay
/// budget is sized so no request is ever lost.
fn storm(seed: u64) -> ChaosConfig {
    ChaosConfig::default()
        .with_seed(seed)
        .with_worker_panics(200)
        .with_migration_faults(250)
        .with_ledger_blips(100)
        .with_max_retries(12)
}

/// A tiering config whose eDRAM holds roughly `tokens` full-scale KV tokens
/// — small enough that the policy mix migrates constantly, giving the
/// migration-fault stream something to hit.
fn tiny_tiering(engine: &KelleEngine, tokens: usize) -> TierConfig {
    TierConfig::with_edram_budget(engine.kv_footprint_bytes(tokens))
}

#[test]
fn chaos_recovery_is_bit_identical_across_policies_axes_workers_and_seeds() {
    let baseline = sharing_engine(7, 1).serve_batch(policy_mix());
    for axis in [ParallelAxis::Session, ParallelAxis::Intra] {
        for workers in worker_counts() {
            for seed in chaos_seeds() {
                let engine = sharing_engine(7, workers);
                let config = SchedulerConfig::default()
                    .with_parallel_axis(axis)
                    .with_tiering(tiny_tiering(&engine, shared_prefix().len() + 6))
                    .with_chaos(storm(seed));
                let label = format!("axis={axis:?}, workers={workers}, chaos seed={seed}");
                let chaotic = engine
                    .try_serve_batch_parallel_with(policy_mix(), config)
                    .unwrap_or_else(|error| panic!("{label}: {error}"));
                assert_streams_identical(&baseline, &chaotic, &label);
                assert!(
                    chaotic.chaos.injected_panics > 0,
                    "{label}: the storm must actually panic workers"
                );
                assert_eq!(
                    chaotic.chaos.lost_requests, 0,
                    "{label}: the replay budget must absorb every panic"
                );
                assert_eq!(
                    chaotic.chaos.restored_sessions, chaotic.chaos.replayed_steps,
                    "{label}: every replay restores exactly one checkpoint"
                );
                assert!(
                    chaotic.chaos.checkpoints_taken > 0,
                    "{label}: chaos-enabled runs checkpoint every committed tick"
                );
            }
        }
    }
}

#[test]
fn injected_faults_never_leak_capacity_or_tier_residency() {
    for seed in chaos_seeds() {
        let engine = sharing_engine(11, 2);
        let config = SchedulerConfig::default()
            .with_tiering(tiny_tiering(&engine, shared_prefix().len() + 6))
            .with_chaos(storm(seed));
        let outcome = engine
            .try_serve_batch_parallel_with(policy_mix(), config)
            .expect("the replay budget absorbs every fault");
        // Conservation holds through retried and abandoned migrations:
        // whatever left a tier arrived somewhere else, and only successful
        // transfers count as migrated bytes.
        let out_total = outcome.tiering.edram.out_bytes
            + outcome.tiering.dram.out_bytes
            + outcome.tiering.nvme.out_bytes;
        let in_total = outcome.tiering.edram.in_bytes
            + outcome.tiering.dram.in_bytes
            + outcome.tiering.nvme.in_bytes;
        assert_eq!(out_total, in_total, "seed {seed}: tier conservation");
        assert_eq!(
            outcome.tiering.migrated_bytes, out_total,
            "seed {seed}: failed attempts must not count as moved bytes"
        );
    }
}

#[test]
fn deadlines_and_queue_timeouts_shed_with_partial_output() {
    let engine = KelleEngine::builder().seed(3).build();
    // Admit-one capacity: the second request waits past its queue timeout.
    let capacity = engine.kv_footprint_bytes(4);
    let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
    let mut scheduler = BatchScheduler::with_config(&engine, config);
    scheduler.submit(
        ServeRequest::builder(vec![1, 2, 3, 4])
            .decode_len(10)
            .deadline_ticks(4)
            .build(),
    );
    scheduler.submit(
        ServeRequest::builder(vec![5, 6, 7, 8])
            .decode_len(2)
            .queue_timeout_ticks(2)
            .build(),
    );
    assert_eq!(scheduler.waiting(), 1, "the fixture must queue request 1");
    while !scheduler.is_idle() {
        scheduler.step();
    }
    assert_eq!(scheduler.ledger().live_bytes(), 0, "shedding releases KV");
    let outcome = scheduler.finish().expect("all requests resolved");
    let deadline = &outcome.outcomes[0];
    assert_eq!(deadline.shed, Some(ShedReason::DeadlineExceeded));
    assert_eq!(
        deadline.generated.len(),
        4,
        "a deadline of 4 ticks yields exactly 4 decode tokens"
    );
    // The partial stream is a prefix of the un-shed stream.
    let full = KelleEngine::builder()
        .seed(3)
        .build()
        .serve_one(&[1, 2, 3, 4], 10);
    assert_eq!(deadline.generated, full.generated[..4]);
    let timed_out = &outcome.outcomes[1];
    assert_eq!(timed_out.shed, Some(ShedReason::QueueTimeout));
    assert!(timed_out.generated.is_empty(), "never admitted, no tokens");
    assert_eq!(outcome.chaos.shed_requests, 2);
}

#[test]
fn cancel_and_drain_release_everything_after_faults() {
    for seed in chaos_seeds() {
        let engine = sharing_engine(19, 1);
        let config = SchedulerConfig::default()
            .with_tiering(tiny_tiering(&engine, shared_prefix().len() + 6))
            .with_chaos(storm(seed));
        let mut scheduler = BatchScheduler::with_config(&engine, config);
        let requests = policy_mix();
        let total = requests.len();
        for request in requests {
            scheduler.submit(request);
        }
        // Let faults inject and recover for a couple of ticks, then cancel
        // the longest-running request (decode length 7 — still live) and
        // drain the rest.
        for _ in 0..2 {
            scheduler
                .try_step()
                .expect("the replay budget absorbs every fault");
        }
        assert!(scheduler.cancel(4), "request 4 is live and cancellable");
        assert!(!scheduler.cancel(4), "cancel is idempotent");
        scheduler
            .drain()
            .expect("drain finishes in-flight work despite the storm");
        assert!(scheduler.is_draining());
        assert!(scheduler.is_idle());
        assert_eq!(scheduler.ledger().live_bytes(), 0, "seed {seed}: live KV");
        assert_eq!(
            scheduler.ledger().shared_bytes(),
            0,
            "seed {seed}: shared KV"
        );
        let tier = scheduler.tier().expect("tiering is enabled");
        for index in 0..total {
            assert_eq!(
                tier.session_tier(index),
                None,
                "seed {seed}: request {index} still tier-resident after drain"
            );
        }
        let outcome = scheduler.finish().expect("drained scheduler is idle");
        assert_eq!(outcome.outcomes.len(), total);
        assert_eq!(outcome.outcomes[4].shed, Some(ShedReason::Cancelled));
        assert_eq!(outcome.chaos.cancelled_requests, 1);
        assert_eq!(outcome.chaos.lost_requests, 0);
    }
}

#[test]
fn exhausted_replay_budget_surfaces_typed_worker_lost() {
    let engine = KelleEngine::builder().seed(5).build();
    let chaos = ChaosConfig::default()
        .with_seed(1)
        .with_worker_panics(1000)
        .with_max_retries(0);
    let config = SchedulerConfig::default().with_chaos(chaos);
    let error = engine
        .try_serve_batch_parallel_with(vec![ServeRequest::new(vec![1, 2, 3], 4)], config)
        .expect_err("a certain panic with no retries cannot recover");
    let ServeError::WorkerLost {
        request, attempts, ..
    } = error;
    assert_eq!(request, 0);
    assert_eq!(attempts, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fleets under random fault storms, tiering and both axes:
    /// every stream survives bit-identical to the fault-free run, nothing
    /// is lost, and tier traffic stays conserved.
    #[test]
    fn random_mixes_survive_random_storms_bit_identically(
        seed in 0u64..500,
        chaos_seed in 0u64..500,
        shapes in proptest::collection::vec(0usize..10_000, 2..6),
        axis_pick in 0usize..2,
        workers_pick in 0usize..3,
        edram_tokens in 1usize..24,
        panic_rate in 1u32..400,
        blip_rate in 0u32..200,
        fault_rate in 0u32..400,
    ) {
        let requests: Vec<ServeRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| {
                let prompt_len = 1 + shape % 12;
                let decode_len = 1 + (shape / 12) % 4;
                let policy_idx = (shape / 48) % 5;
                let prompt: Vec<usize> =
                    (0..prompt_len).map(|t| (seed as usize + i * 31 + t * 7) % 512).collect();
                ServeRequest::builder(prompt)
                    .decode_len(decode_len)
                    .policy(CachePolicy::all()[policy_idx])
                    .build()
            })
            .collect();
        let baseline = KelleEngine::builder().seed(seed).build().serve_batch(requests.clone());

        let axis = [ParallelAxis::Session, ParallelAxis::Intra][axis_pick];
        let workers = [1usize, 2, 4][workers_pick];
        let engine = KelleEngine::builder().seed(seed).workers(workers).build();
        let chaos = ChaosConfig::default()
            .with_seed(chaos_seed)
            .with_worker_panics(panic_rate)
            .with_migration_faults(fault_rate)
            .with_ledger_blips(blip_rate)
            .with_max_retries(16);
        let config = SchedulerConfig::default()
            .with_parallel_axis(axis)
            .with_tiering(tiny_tiering(&engine, edram_tokens))
            .with_chaos(chaos);
        let chaotic = engine
            .try_serve_batch_parallel_with(requests, config)
            .expect("a 16-replay budget absorbs any sub-40% panic rate");

        prop_assert_eq!(chaotic.chaos.lost_requests, 0);
        for (a, b) in baseline.outcomes.iter().zip(chaotic.outcomes.iter()) {
            prop_assert_eq!(&a.generated, &b.generated);
            prop_assert_eq!(a.faults, b.faults);
            prop_assert_eq!(&a.trace, &b.trace);
            prop_assert_eq!(&a.hardware, &b.hardware);
        }
        let out_total = chaotic.tiering.edram.out_bytes
            + chaotic.tiering.dram.out_bytes
            + chaotic.tiering.nvme.out_bytes;
        let in_total = chaotic.tiering.edram.in_bytes
            + chaotic.tiering.dram.in_bytes
            + chaotic.tiering.nvme.in_bytes;
        prop_assert_eq!(out_total, in_total);
        prop_assert_eq!(chaotic.tiering.migrated_bytes, out_total);
    }
}
