#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Parallel-equivalence acceptance suite: the threaded serving front-end
//! (`kelle::parallel`) must be **bit-identical** to the single-threaded
//! scheduler — token streams, per-step traces, probability-bearing fault
//! statistics and every `BatchOutcome` metric — for every worker count, all
//! five cache policies, prefix-sharing hits and contention-limited
//! admission.
//!
//! The CI determinism gate runs this suite at explicit worker counts via the
//! `KELLE_TEST_WORKERS` environment variable (comma-separated, e.g.
//! `KELLE_TEST_WORKERS=1,2,4`); without it the suite defaults to {1, 2, 4}.

use kelle::{
    AdmissionPolicy, BatchOutcome, CachePolicy, KelleEngine, PrefixSharingConfig, SchedulerConfig,
    ServeRequest,
};
use proptest::prelude::*;

/// Worker counts under test: `KELLE_TEST_WORKERS` (the CI determinism gate
/// sets `1,2,4`) or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => {
            let counts: Vec<usize> = raw
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
                })
                .collect();
            assert!(!counts.is_empty(), "KELLE_TEST_WORKERS must list counts");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// Asserts two batch outcomes are bit-identical in every observable.
fn assert_outcomes_identical(a: &BatchOutcome, b: &BatchOutcome, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: request count");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.generated, y.generated, "{label}: stream of request {i}");
        assert_eq!(x.trace, y.trace, "{label}: trace of request {i}");
        assert_eq!(x.cache, y.cache, "{label}: cache stats of request {i}");
        assert_eq!(x.faults, y.faults, "{label}: fault stats of request {i}");
        assert_eq!(x.hardware, y.hardware, "{label}: hardware of request {i}");
        assert_eq!(
            (x.prefilled_tokens, x.prefix_hit_tokens),
            (y.prefilled_tokens, y.prefix_hit_tokens),
            "{label}: prefill accounting of request {i}"
        );
    }
    assert_eq!(a.stats, b.stats, "{label}: aggregate stats");
    assert_eq!(a.contention, b.contention, "{label}: contention metrics");
    assert_eq!(a.prefix, b.prefix, "{label}: prefix metrics");
}

fn shared_prefix() -> Vec<usize> {
    (0..24).map(|i| (i * 7 + 5) % 512).collect()
}

/// One request per cache policy (plus a seed-override straggler), most of
/// them riding the shared prefix, with decode lengths that stagger
/// completions across ticks.
fn policy_mix() -> Vec<ServeRequest> {
    let prefix = shared_prefix();
    let mut requests: Vec<ServeRequest> = CachePolicy::all()
        .into_iter()
        .enumerate()
        .map(|(i, policy)| {
            let mut prompt = prefix.clone();
            prompt.extend([100 + i, 200 + i, 300 + i]);
            ServeRequest::builder(prompt)
                .decode_len(3 + i)
                .policy(policy)
                .build()
        })
        .collect();
    // A non-prefix request with a seed override, so admission mixes hit and
    // miss footprints.
    requests.push(
        ServeRequest::builder(vec![9, 8, 7, 6, 5, 4])
            .decode_len(4)
            .seed(1234)
            .build(),
    );
    requests
}

fn sharing_engine(seed: u64) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(seed)
        .build();
    assert!(engine.publish_prefix(&shared_prefix()));
    engine
}

#[test]
fn parallel_matches_sequential_for_all_policies_with_prefix_hits() {
    let sequential_engine = sharing_engine(7);
    let sequential = sequential_engine.serve_batch(policy_mix());
    for workers in worker_counts() {
        let engine = sharing_engine(7);
        let parallel = kelle::parallel::serve_batch_parallel(
            &engine,
            policy_mix(),
            SchedulerConfig::default(),
            workers,
            |_, _| {},
        );
        assert_outcomes_identical(&sequential, &parallel, &format!("workers={workers}"));
        // The prefix store saw the same traffic (lookups, hits, hit tokens).
        assert_eq!(engine.prefix_stats(), sequential_engine.prefix_stats());
    }
}

#[test]
fn parallel_matches_sequential_under_contention_for_every_admission_policy() {
    // Capacity fits roughly two prompts: requests queue, overtake (under
    // shortest-prompt-first / capacity-fit) and back-fill across ticks.
    let probe = sharing_engine(7);
    let capacity = probe.kv_footprint_bytes(2 * (shared_prefix().len() + 3));
    for admission in AdmissionPolicy::all() {
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(capacity)
            .with_admission(admission);
        let sequential = sharing_engine(7).serve_batch_with(policy_mix(), config);
        assert!(
            sequential.contention.total_queue_ticks > 0,
            "the fixture must actually contend ({})",
            admission.name()
        );
        for workers in worker_counts() {
            let engine = sharing_engine(7);
            let parallel = kelle::parallel::serve_batch_parallel(
                &engine,
                policy_mix(),
                config,
                workers,
                |_, _| {},
            );
            assert_outcomes_identical(
                &sequential,
                &parallel,
                &format!("admission={}, workers={workers}", admission.name()),
            );
        }
    }
}

#[test]
fn parallel_streaming_preserves_token_order_and_engine_stats() {
    let mut sequential_tokens = Vec::new();
    let sequential_engine = sharing_engine(11);
    sequential_engine.serve_batch_streaming(policy_mix(), |request, token| {
        sequential_tokens.push((request, token));
    });
    for workers in worker_counts() {
        let engine = KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled())
            .seed(11)
            .workers(workers)
            .build();
        assert!(engine.publish_prefix(&shared_prefix()));
        let mut parallel_tokens = Vec::new();
        engine.serve_batch_parallel_streaming(policy_mix(), |request, token| {
            parallel_tokens.push((request, token));
        });
        assert_eq!(
            sequential_tokens, parallel_tokens,
            "streaming order must match at workers={workers}"
        );
        // Lifetime engine statistics fold in the same order too.
        assert_eq!(engine.stats(), sequential_engine.stats());
    }
}

#[test]
fn parallel_serializes_auto_publication_like_sequential_serving() {
    // Auto-publish: the first cold session publishes the boundary and every
    // later session must hit it — the admission pump serialises planning
    // around the publication, so hit/miss accounting matches sequentially.
    let system: Vec<usize> = (0..16).map(|i| (i * 3 + 1) % 512).collect();
    let build = |workers: usize| {
        KelleEngine::builder()
            .prefix_sharing(PrefixSharingConfig::enabled().with_auto_publish(system.len()))
            .workers(workers)
            .build()
    };
    let requests: Vec<ServeRequest> = (0..4)
        .map(|i| {
            let mut prompt = system.clone();
            prompt.extend([40 + i, 50 + i]);
            ServeRequest::new(prompt, 3)
        })
        .collect();

    let sequential_engine = build(1);
    let sequential = sequential_engine.serve_batch(requests.clone());
    for workers in worker_counts() {
        let engine = build(workers);
        let parallel = engine.serve_batch_parallel(requests.clone());
        assert_outcomes_identical(&sequential, &parallel, &format!("workers={workers}"));
        assert_eq!(
            engine.prefix_stats(),
            sequential_engine.prefix_stats(),
            "publication/hit accounting must match at workers={workers}"
        );
        assert_eq!(parallel.prefix.hit_requests, 3, "publisher runs cold once");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random request mixes (policy, seed, prompt, decode length, capacity
    /// share) serve bit-identically through the worker pool.
    #[test]
    fn random_mixes_are_worker_count_invariant(
        seed in 0u64..500,
        shapes in proptest::collection::vec(0usize..10_000, 2..6),
        capacity_tokens in 4usize..40,
    ) {
        // Each sampled integer encodes one request's shape: prompt length in
        // 1..=12, decode length in 1..=4, policy index in 0..5.
        let requests: Vec<ServeRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| {
                let prompt_len = 1 + shape % 12;
                let decode_len = 1 + (shape / 12) % 4;
                let policy_idx = (shape / 48) % 5;
                let prompt: Vec<usize> =
                    (0..prompt_len).map(|t| (seed as usize + i * 31 + t * 7) % 512).collect();
                ServeRequest::builder(prompt)
                    .decode_len(decode_len)
                    .policy(CachePolicy::all()[policy_idx])
                    .build()
            })
            .collect();
        let engine = KelleEngine::builder().seed(seed).build();
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(engine.kv_footprint_bytes(capacity_tokens));
        let sequential = engine.serve_batch_with(requests.clone(), config);
        for workers in [2, 3] {
            let engine = KelleEngine::builder().seed(seed).build();
            let parallel = kelle::parallel::serve_batch_parallel(
                &engine,
                requests.clone(),
                config,
                workers,
                |_, _| {},
            );
            prop_assert_eq!(sequential.outcomes.len(), parallel.outcomes.len());
            for (a, b) in sequential.outcomes.iter().zip(parallel.outcomes.iter()) {
                prop_assert_eq!(&a.generated, &b.generated);
                prop_assert_eq!(a.faults, b.faults);
                prop_assert_eq!(&a.trace, &b.trace);
            }
            prop_assert_eq!(&sequential.contention, &parallel.contention);
            prop_assert_eq!(sequential.stats, parallel.stats);
        }
    }
}
