//! Trace-engine acceptance suite: fleet-scale traces replayed through the
//! unified `KelleEngine::serve` entry point must be **deterministic** in
//! every observable the SLO benchmark reports:
//!
//! * token streams are bit-identical across admission policies and worker
//!   counts (arrival-tick admission never changes a token);
//! * the tick-denominated [`kelle::SloReport`] is bit-identical across
//!   worker counts for a fixed admission policy;
//! * a nested three-level prefix hierarchy published from **one** recording
//!   pass serves every intermediate boundary, and replaying against it is
//!   bit-identical to cold sessions for all five cache policies.
//!
//! The CI determinism gate runs this suite at explicit worker counts via
//! `KELLE_TEST_WORKERS` (comma-separated, default {1, 2, 4}).

use kelle::workloads::{PrefixHierarchy, SessionArchetype, Trace, TraceConfig, TraceEngine};
use kelle::{
    AdmissionPolicy, BatchOutcome, CachePolicy, KelleEngine, PrefixSharingConfig, SchedulerConfig,
    ServeOptions, ServeRequest, SloReport, SloSpec,
};

/// Worker counts under test: `KELLE_TEST_WORKERS` or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// A small but structurally complete fleet: Poisson arrivals, a mixed
/// archetype population with multi-turn conversations, and the three-level
/// prefix hierarchy.
fn fleet_trace() -> Trace {
    TraceEngine::new(
        TraceConfig::poisson(64, 0.25)
            .with_hierarchy(PrefixHierarchy::new(4, 2, 2).with_users(2, 2))
            .with_archetypes(vec![
                SessionArchetype::new("chat", 3, (1, 3)).with_decode_tokens((2, 3)),
                SessionArchetype::new("multi", 1, (1, 3))
                    .with_decode_tokens((2, 3))
                    .with_turns((2, 2), (2, 6)),
            ])
            .with_seed(41),
    )
    .generate()
}

fn engine_with_hierarchy(workers: usize, trace: &Trace) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .workers(workers)
        .seed(17)
        .build();
    for publication in &trace.publications {
        engine.publish_prefix_hierarchy(&publication.tokens, &publication.boundaries);
    }
    engine
}

/// Replays the trace with arrival-tick admission under a tight capacity.
fn replay(engine: &KelleEngine, trace: &Trace, admission: AdmissionPolicy) -> BatchOutcome {
    let requests: Vec<ServeRequest> = trace
        .requests
        .iter()
        .map(|r| {
            ServeRequest::builder(r.prompt.clone())
                .decode_len(r.decode_len)
                .arrival_tick(r.arrival_tick)
                .build()
        })
        .collect();
    let scheduler = SchedulerConfig::default()
        .with_kv_capacity_bytes(engine.kv_footprint_bytes(32))
        .with_admission(admission)
        .with_slo(SloSpec::new(25, 1.5));
    engine
        .serve(
            requests,
            ServeOptions::new().parallel().with_scheduler(scheduler),
        )
        .expect("infallible options cannot fail")
}

#[test]
fn slo_report_is_bit_identical_across_worker_counts_for_every_policy() {
    let trace = fleet_trace();
    let mut reference_streams: Option<Vec<Vec<usize>>> = None;
    for admission in [
        AdmissionPolicy::Fcfs,
        AdmissionPolicy::ShortestPromptFirst,
        AdmissionPolicy::CapacityFit,
    ] {
        let mut reference_slo: Option<SloReport> = None;
        for workers in worker_counts() {
            let engine = engine_with_hierarchy(workers, &trace);
            let outcome = replay(&engine, &trace, admission);
            assert_eq!(outcome.slo.requests as usize, trace.requests.len());
            assert_eq!(outcome.slo.shed, 0, "nothing times out in this fleet");
            assert!(outcome.slo.total_tokens > 0);

            // Tokens never see the admission policy or the worker count.
            let streams: Vec<Vec<usize>> = outcome
                .outcomes
                .iter()
                .map(|o| o.generated.clone())
                .collect();
            match &reference_streams {
                None => reference_streams = Some(streams),
                Some(expected) => assert_eq!(
                    expected, &streams,
                    "{admission:?} at {workers} workers changed a token stream"
                ),
            }

            // Tick-denominated latencies never see the worker count.
            match &reference_slo {
                None => reference_slo = Some(outcome.slo.clone()),
                Some(expected) => assert_eq!(
                    expected, &outcome.slo,
                    "{admission:?} SLO report changed at {workers} workers"
                ),
            }
        }
    }
}

#[test]
fn queueing_under_tight_capacity_is_visible_in_the_slo_report() {
    let trace = fleet_trace();
    let engine = engine_with_hierarchy(1, &trace);
    let outcome = replay(&engine, &trace, AdmissionPolicy::Fcfs);
    // The capacity is tight enough that the fleet queues, and the queue
    // delay shows up in time-to-first-token.
    assert!(outcome.slo.queue.max > 0.0, "the fleet must contend");
    assert!(outcome.slo.ttft.p99 >= outcome.slo.queue.p99);
    assert!(outcome.slo.goodput_requests <= outcome.slo.completed);
    // Completion accounting is closed: every request completed or was shed.
    assert_eq!(
        outcome.slo.completed + outcome.slo.shed,
        outcome.slo.requests
    );
}

#[test]
fn one_recording_pass_publishes_every_intermediate_boundary() {
    let trace = fleet_trace();
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(17)
        .build();

    // The first leaf publishes all three levels from one recording pass.
    let first = &trace.publications[0];
    assert_eq!(first.boundaries.len(), 3);
    assert_eq!(
        engine.publish_prefix_hierarchy(&first.tokens, &first.boundaries),
        3
    );
    // A sibling leaf under the same tool shares system + tool preamble:
    // only its user-history level is new.
    let sibling = &trace.publications[1];
    assert_eq!(sibling.tool, first.tool);
    assert_eq!(
        engine.publish_prefix_hierarchy(&sibling.tokens, &sibling.boundaries),
        1
    );
    // Republishing either is a no-op.
    assert_eq!(
        engine.publish_prefix_hierarchy(&first.tokens, &first.boundaries),
        0
    );

    // Every intermediate boundary now serves prefix hits: a prompt
    // extending level k reuses exactly the first k levels.
    for &boundary in &first.boundaries {
        let mut prompt = first.tokens[..boundary].to_vec();
        prompt.extend([7, 3, 9]);
        let outcome = engine
            .serve(vec![ServeRequest::new(prompt, 2)], ServeOptions::new())
            .expect("infallible options cannot fail");
        assert_eq!(
            outcome.outcomes[0].prefix_hit_tokens, boundary,
            "a prompt extending the {boundary}-token level must reuse it"
        );
    }
}

#[test]
fn hierarchy_replay_is_bit_identical_to_cold_sessions_for_all_five_policies() {
    let trace = fleet_trace();
    for policy in CachePolicy::all() {
        let build = || {
            KelleEngine::builder()
                .prefix_sharing(PrefixSharingConfig::enabled())
                .policy(policy)
                .seed(17)
                .build()
        };
        let warm = build();
        let published: usize = trace
            .publications
            .iter()
            .map(|p| warm.publish_prefix_hierarchy(&p.tokens, &p.boundaries))
            .sum();
        // One system prompt + one preamble per tool + one history per leaf:
        // shared ancestors deduplicate across sibling leaves.
        assert_eq!(
            published,
            1 + 2 + trace.publications.len(),
            "{policy:?}: hierarchy levels published once each"
        );
        let cold = build();

        // One request per hierarchy leaf, each extending the full
        // three-level prefix.
        let requests: Vec<ServeRequest> = trace
            .publications
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut prompt = p.tokens.clone();
                prompt.extend([11 + i, 5, 2]);
                ServeRequest::new(prompt, 3)
            })
            .collect();
        let warm_outcome = warm
            .serve(requests.clone(), ServeOptions::new())
            .expect("infallible options cannot fail");
        let cold_outcome = cold
            .serve(requests, ServeOptions::new())
            .expect("infallible options cannot fail");

        let depth = trace.publications[0].tokens.len();
        for (i, (w, c)) in warm_outcome
            .outcomes
            .iter()
            .zip(cold_outcome.outcomes.iter())
            .enumerate()
        {
            assert_eq!(
                w.generated, c.generated,
                "{policy:?}: request {i} must decode identically warm and cold"
            );
            assert_eq!(
                w.prefix_hit_tokens, depth,
                "{policy:?}: request {i} must reuse the whole three-level prefix"
            );
            assert_eq!(
                c.prefix_hit_tokens, 0,
                "{policy:?}: cold engine has no store"
            );
        }
        assert_eq!(
            warm_outcome.prefix.hit_requests as usize,
            trace.publications.len()
        );
    }
}
