#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Integration tests for the session-oriented serving API: multi-turn KV
//! reuse, the policy registry, and the continuous-batching scheduler.

use kelle::accuracy::Method;
use kelle::cache::CacheBudget;
use kelle::{
    AdmissionPolicy, CachePolicy, EngineStats, KelleEngine, SchedulerConfig, ServeRequest,
};

fn engine_with_policy(policy: CachePolicy) -> KelleEngine {
    KelleEngine::builder().policy(policy).seed(7).build()
}

/// A session serving two chained turns must produce the same token stream as
/// one request whose prompt is the session's full context at the start of the
/// second decode — while pre-filling only the second turn's new tokens.
///
/// Exact stream equality holds for the non-evicting policy: the KV state an
/// evicting policy carries depends on when prefill pruning ran, which is the
/// semantic difference sessions introduce on purpose.
#[test]
fn session_turns_match_one_shot_serving() {
    let turn1: Vec<usize> = vec![5, 17, 99, 23, 4, 87, 15, 3];
    let turn2: Vec<usize> = vec![44, 12, 7, 7, 201, 16];
    let decode1 = 6;
    let decode2 = 9;

    let session_engine = engine_with_policy(CachePolicy::Full);
    let mut session = session_engine.open_session();
    let first = session.turn(&turn1, decode1);
    assert_eq!(first.generated.len(), decode1);
    assert_eq!(first.prefilled_tokens, turn1.len());

    // The one-shot prompt: everything the session had processed when the
    // second decode began (turn 1's prompt, its decode-time input chain, and
    // turn 2's new tokens).
    let mut one_shot_prompt = session.context().to_vec();
    one_shot_prompt.extend_from_slice(&turn2);

    let second = session.turn(&turn2, decode2);
    assert_eq!(
        second.prefilled_tokens,
        turn2.len(),
        "session must pre-fill only the new turn"
    );
    assert_eq!(
        second.context_len,
        turn1.len() + decode1 + turn2.len() + decode2
    );

    let one_shot_engine = engine_with_policy(CachePolicy::Full);
    let one_shot = one_shot_engine.serve_one(&one_shot_prompt, decode2);
    assert_eq!(
        second.generated, one_shot.generated,
        "chained turns and one-shot serving must emit the same tokens"
    );
}

/// The per-step trace proves the second turn performed prefill work only for
/// its own tokens: decode positions continue from the existing context
/// instead of restarting, and the session's cumulative prefill counter grows
/// by exactly the new tokens.
#[test]
fn session_reuses_cache_instead_of_reprefilling() {
    let engine = engine_with_policy(CachePolicy::Aerp);
    let mut session = engine.open_session();

    let first = session.turn(&[1, 2, 3, 4, 5, 6, 7, 8], 4);
    assert_eq!(session.prefilled_tokens(), 8);
    assert_eq!(first.trace.steps[0].position, 8);

    let second = session.turn(&[9, 10], 4);
    assert_eq!(second.prefilled_tokens, 2);
    assert_eq!(
        session.prefilled_tokens(),
        10,
        "only 2 more tokens were pre-filled"
    );
    // Decode resumes right after the accumulated context (8 + 4 decodes + 2).
    assert_eq!(second.trace.steps[0].position, 14);
    // The hardware model was charged for a 2-token prefill, not a 14-token
    // one: strictly less compute energy.  (Latency is not compared — tiny
    // incremental prefills run at worse array utilization, and both turns
    // are floored by weight streaming anyway.)
    assert!(second.hardware.prefill.energy.rsa_j < first.hardware.prefill.energy.rsa_j);
    // ...but the decode phase still pays for attending over the full 14-token
    // context: it costs exactly what a one-shot request with the same total
    // context and decode length reports.
    let one_shot = engine_with_policy(CachePolicy::Aerp).serve_one(&(0..14).collect::<Vec<_>>(), 4);
    let delta =
        (second.hardware.decode.energy.total_j() - one_shot.hardware.decode.energy.total_j()).abs();
    assert!(delta < 1e-9, "decode-phase energy differs by {delta}");
}

/// Serving the same request through a session must be deterministic for a
/// fixed seed, including across engine instances.
#[test]
fn sessions_are_deterministic_per_seed() {
    let run = || {
        let engine = engine_with_policy(CachePolicy::Aerp);
        let mut session = engine.open_session();
        let mut tokens = session.turn(&[9, 8, 7, 6, 5], 6).generated;
        tokens.extend(session.turn(&[4, 3], 6).generated);
        tokens
    };
    assert_eq!(run(), run());
}

/// The policy registry is in one-to-one correspondence with the accuracy
/// experiments' `Method` catalogue, and builds a backend whose name matches.
#[test]
fn policy_registry_matches_method_catalogue() {
    let methods = Method::all();
    let policies = CachePolicy::all();
    assert_eq!(methods.len(), policies.len());
    for (method, policy) in methods.into_iter().zip(policies) {
        assert_eq!(method.policy(), policy);
        assert_eq!(Method::from_policy(policy), method);
        let backend = policy.build(CacheBudget::new(8), 4);
        assert_eq!(backend.name(), policy.name());
    }
}

/// Every active request makes progress on every scheduler step (round-robin
/// fairness), and requests finish exactly when their decode budget is spent.
#[test]
fn batch_scheduler_is_fair() {
    let engine = engine_with_policy(CachePolicy::Aerp);
    let mut scheduler = kelle::BatchScheduler::new(&engine);
    let decode_lens = [3usize, 5, 4, 6];
    for (i, &decode_len) in decode_lens.iter().enumerate() {
        scheduler.admit(ServeRequest::new(vec![i + 1, i + 2, i + 3], decode_len));
    }

    let mut steps_taken = vec![0usize; decode_lens.len()];
    let mut step_index = 0;
    while !scheduler.is_idle() {
        let expected_active: Vec<usize> = decode_lens
            .iter()
            .enumerate()
            .filter(|(_, &len)| step_index < len)
            .map(|(i, _)| i)
            .collect();
        let events = scheduler.step();
        let progressed: Vec<usize> = events.iter().map(|e| e.request).collect();
        assert_eq!(
            progressed, expected_active,
            "step {step_index}: every unfinished request progresses, in admission order"
        );
        for event in &events {
            steps_taken[event.request] += 1;
            assert_eq!(
                event.finished,
                steps_taken[event.request] == decode_lens[event.request]
            );
        }
        step_index += 1;
    }
    assert_eq!(steps_taken.to_vec(), decode_lens.to_vec());

    let outcome = scheduler.finish().expect("all requests finished");
    for (i, served) in outcome.outcomes.iter().enumerate() {
        assert_eq!(served.generated.len(), decode_lens[i]);
    }
}

/// `serve_batch` over N >= 4 concurrent sessions returns per-request outcomes
/// identical to sequential serving, and an aggregate that equals the sum of
/// the sequential serves' stats.
#[test]
fn serve_batch_matches_sequential_serving() {
    let requests: Vec<ServeRequest> = vec![
        ServeRequest::new(vec![3, 1, 4, 1, 5], 4),
        ServeRequest::builder(vec![2, 7, 1, 8, 2, 8])
            .decode_len(7)
            .build(),
        ServeRequest::builder(vec![6, 6, 6])
            .decode_len(5)
            .policy(CachePolicy::Full)
            .build(),
        ServeRequest::builder(vec![1, 61, 80, 33])
            .decode_len(6)
            .seed(99)
            .build(),
        ServeRequest::builder(vec![9, 9, 9, 9])
            .decode_len(3)
            .policy(CachePolicy::StreamingLlm)
            .build(),
    ];
    assert!(requests.len() >= 4);

    let batch_engine = engine_with_policy(CachePolicy::Aerp);
    let batch = batch_engine.serve_batch(requests.clone());
    assert_eq!(batch.outcomes.len(), requests.len());

    let sequential_engine = engine_with_policy(CachePolicy::Aerp);
    let mut sequential_sum = EngineStats::default();
    for (request, batched) in requests.into_iter().zip(batch.outcomes.iter()) {
        let before = sequential_engine.stats();
        let sequential = sequential_engine.serve_request(request);
        let after = sequential_engine.stats();

        assert_eq!(sequential.generated, batched.generated);
        assert_eq!(sequential.cache, batched.cache);
        assert_eq!(sequential.trace, batched.trace);
        assert!(
            (sequential.hardware.total_energy_j() - batched.hardware.total_energy_j()).abs() < 1e-9
        );
        sequential_sum = sequential_sum.merged(EngineStats {
            requests: after.requests - before.requests,
            tokens_generated: after.tokens_generated - before.tokens_generated,
            evictions: after.evictions - before.evictions,
            hardware_energy_j: after.hardware_energy_j - before.hardware_energy_j,
            prefix_hit_tokens: after.prefix_hit_tokens - before.prefix_hit_tokens,
        });
    }

    assert_eq!(batch.stats.requests, sequential_sum.requests);
    assert_eq!(
        batch.stats.tokens_generated,
        sequential_sum.tokens_generated
    );
    assert_eq!(batch.stats.evictions, sequential_sum.evictions);
    assert!((batch.stats.hardware_energy_j - sequential_sum.hardware_energy_j).abs() < 1e-9);

    // The engine-level lifetime stats agree with the batch aggregate too.
    let lifetime = batch_engine.stats();
    assert_eq!(lifetime.requests, batch.stats.requests);
    assert_eq!(lifetime.tokens_generated, batch.stats.tokens_generated);
    assert_eq!(lifetime.evictions, batch.stats.evictions);
    assert!((lifetime.hardware_energy_j - batch.stats.hardware_energy_j).abs() < 1e-9);
}

/// The streaming callback sees every token, in scheduler order, tagged with
/// its request index.
#[test]
fn streaming_callback_observes_every_token() {
    let engine = engine_with_policy(CachePolicy::Aerp);
    let requests = vec![
        ServeRequest::new(vec![1, 2, 3], 2),
        ServeRequest::new(vec![4, 5, 6], 4),
    ];
    let mut streamed: Vec<(usize, usize)> = Vec::new();
    let batch = engine.serve_batch_streaming(requests, |request, token| {
        streamed.push((request, token));
    });

    let streamed_for = |request: usize| -> Vec<usize> {
        streamed
            .iter()
            .filter(|(r, _)| *r == request)
            .map(|(_, t)| *t)
            .collect()
    };
    assert_eq!(streamed_for(0), batch.outcomes[0].generated);
    assert_eq!(streamed_for(1), batch.outcomes[1].generated);
    // Round-robin interleaving: the first two scheduler steps alternate
    // between the two requests.
    assert_eq!(streamed[0].0, 0);
    assert_eq!(streamed[1].0, 1);
    assert_eq!(streamed[2].0, 0);
    assert_eq!(streamed[3].0, 1);
}

/// Four requests whose decode growth dominates their prompts, so that at
/// half capacity the first three are admitted together (prefills fit) and
/// then oversubscribe the budget while a fourth queues behind them.
fn contention_request_mix() -> Vec<ServeRequest> {
    vec![
        ServeRequest::new(vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3], 12),
        ServeRequest::builder(vec![2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5])
            .decode_len(10)
            .policy(CachePolicy::Full)
            .build(),
        ServeRequest::new(vec![1, 6, 1, 8, 0, 3, 3, 9, 8, 8, 7, 4, 9, 8, 9, 4], 14),
        ServeRequest::builder(vec![5, 7, 7, 2, 1, 5, 6, 6, 4, 9, 6, 9, 2, 0, 9, 1])
            .decode_len(8)
            .seed(99)
            .build(),
    ]
}

/// Acceptance criterion of the capacity-arbitration refactor, part 1: with
/// the shared eDRAM capacity sized to hold every admitted request's final
/// footprint, `serve_batch_with` reproduces the unbounded scheduler exactly —
/// same tokens, same traces, same aggregate stats, and zero queueing/spill.
#[test]
fn ample_capacity_reproduces_unbounded_serving_exactly() {
    let requests = contention_request_mix();

    let unbounded_engine = engine_with_policy(CachePolicy::Aerp);
    let unbounded = unbounded_engine.serve_batch(requests.clone());
    assert_eq!(unbounded.contention.capacity_bytes, None);

    let bounded_engine = engine_with_policy(CachePolicy::Aerp);
    let total: u64 = requests
        .iter()
        .map(|r| bounded_engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
        .sum();
    let bounded = bounded_engine.serve_batch_with(
        requests,
        SchedulerConfig::default().with_kv_capacity_bytes(total),
    );

    assert_eq!(bounded.contention.capacity_bytes, Some(total));
    assert_eq!(bounded.contention.total_queue_ticks, 0);
    assert_eq!(bounded.contention.spill_bytes, 0);
    for (a, b) in unbounded.outcomes.iter().zip(bounded.outcomes.iter()) {
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.cache, b.cache);
        assert!((a.hardware.total_energy_j() - b.hardware.total_energy_j()).abs() < 1e-12);
        assert!((a.hardware.total_latency_s() - b.hardware.total_latency_s()).abs() < 1e-12);
    }
    assert_eq!(unbounded.stats, bounded.stats);
}

/// Acceptance criterion, part 2: with capacity halved, requests queue and the
/// outcome reports nonzero time-in-queue and spill bytes — while every
/// per-request token stream stays byte-identical to unbounded serving.
#[test]
fn halved_capacity_queues_and_spills_without_changing_tokens() {
    let requests = contention_request_mix();

    let unbounded_engine = engine_with_policy(CachePolicy::Aerp);
    let unbounded = unbounded_engine.serve_batch(requests.clone());

    let bounded_engine = engine_with_policy(CachePolicy::Aerp);
    let total: u64 = requests
        .iter()
        .map(|r| bounded_engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
        .sum();
    let halved = bounded_engine.serve_batch_with(
        requests,
        SchedulerConfig::default().with_kv_capacity_bytes(total / 2),
    );

    // Contention shows up in the metrics...
    assert!(
        halved.contention.total_queue_ticks > 0,
        "requests must queue at half capacity"
    );
    assert!(
        halved.contention.spill_bytes > 0,
        "oversubscribed decode growth must spill"
    );
    assert!(halved.contention.peak_residency_bytes > total / 2);
    assert!(halved.contention.max_queue_ticks >= 1);
    let queued = halved
        .contention
        .per_request
        .iter()
        .filter(|t| t.queue_ticks > 0)
        .count();
    assert!(queued > 0);
    // ...and in the hardware cost model: contended requests were costed
    // against a slice of the eDRAM, so their DRAM traffic grew.
    let dram = |batch: &kelle::BatchOutcome| -> f64 {
        batch
            .outcomes
            .iter()
            .map(|o| o.hardware.total_energy().dram_j)
            .sum()
    };
    assert!(dram(&halved) > dram(&unbounded));
    // ...but never in the functional output.
    for (a, b) in unbounded.outcomes.iter().zip(halved.outcomes.iter()) {
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.cache, b.cache);
    }
    assert_eq!(unbounded.stats.requests, halved.stats.requests);
    assert_eq!(
        unbounded.stats.tokens_generated,
        halved.stats.tokens_generated
    );
    assert_eq!(unbounded.stats.evictions, halved.stats.evictions);
}

/// Admission policies reorder *service*, never *results*: outcomes stay in
/// submission order and token streams are unchanged under every policy.
#[test]
fn admission_policies_preserve_streams_and_order() {
    let requests = contention_request_mix();
    let reference = engine_with_policy(CachePolicy::Aerp).serve_batch(requests.clone());
    let engine = engine_with_policy(CachePolicy::Aerp);
    let total: u64 = requests
        .iter()
        .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
        .sum();
    for admission in AdmissionPolicy::all() {
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes(total / 2)
            .with_admission(admission);
        let batch = engine.serve_batch_with(requests.clone(), config);
        for (a, b) in reference.outcomes.iter().zip(batch.outcomes.iter()) {
            assert_eq!(a.generated, b.generated, "{admission:?}");
        }
        assert_eq!(
            batch.contention.per_request.len(),
            requests.len(),
            "{admission:?}"
        );
    }
}

/// Per-request overrides are honoured: a `Full` policy request never evicts
/// even when the engine default is a tightly budgeted AERP.
#[test]
fn per_request_policy_overrides_apply() {
    let engine = KelleEngine::builder()
        .policy(CachePolicy::Aerp)
        .budget(
            CacheBudget::new(4)
                .with_recent_window(2)
                .with_sink_tokens(1),
        )
        .build();
    let prompt: Vec<usize> = (0..24).collect();

    let default_outcome = engine.serve_one(&prompt, 8);
    assert!(default_outcome.cache.evictions > 0);

    let full = engine.serve_request(
        ServeRequest::builder(prompt)
            .decode_len(8)
            .policy(CachePolicy::Full)
            .build(),
    );
    assert_eq!(full.cache.evictions, 0);
}
