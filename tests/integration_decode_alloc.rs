//! Decode-hot-path acceptance tests for the arena storage rewrite:
//!
//! 1. **Zero steady-state heap growth** — once the scratch buffers and policy
//!    arenas have warmed up, a decode step with `NoFaults` must not grow the
//!    heap at all (measured with a counting global allocator, per thread so
//!    parallel tests cannot pollute the ledger).
//! 2. **Byte-identical token streams** — the borrowed `EntryRef` hot path
//!    must generate exactly the tokens *and* probability bits of the
//!    historical materialize-then-compute implementation
//!    (`run_with_via_entries`, the pre-arena algorithm preserved verbatim),
//!    for every cache policy, with and without active fault injection.
//! 3. **Arena-footprint stats** — `CacheStats::bytes_fp16` tracks live
//!    entries (stride × count), not retired buffer capacity, across a real
//!    decode with heavy eviction.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use kelle::cache::{CacheBudget, CachePolicy};
use kelle::model::fault::{BitFlipRates, FaultInjector, NoFaults, ProbabilisticFaults};
use kelle::model::generation::{
    decode_step, prefill, run_with, run_with_via_entries, GenerationConfig, GenerationState,
};
use kelle::model::{ModelConfig, ModelKind, SurrogateDims, SurrogateModel};

thread_local! {
    /// Net heap bytes held by the current thread (allocations minus frees).
    static NET_HEAP: Cell<isize> = const { Cell::new(0) };
}

/// A `System`-backed allocator that keeps a per-thread net-bytes ledger.
struct CountingAllocator;

// SAFETY: defers all allocation to `System`; the bookkeeping only touches a
// per-thread `Cell` via `try_with` (no allocation, no panics during thread
// teardown).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let _ = NET_HEAP.try_with(|c| c.set(c.get() + layout.size() as isize));
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        let _ = NET_HEAP.try_with(|c| c.set(c.get() - layout.size() as isize));
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let _ =
                NET_HEAP.try_with(|c| c.set(c.get() + new_size as isize - layout.size() as isize));
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn net_heap_bytes() -> isize {
    NET_HEAP.with(Cell::get)
}

fn small_model(seed: u64) -> SurrogateModel {
    let config = ModelConfig::for_kind(ModelKind::Llama2_7b).with_surrogate(SurrogateDims {
        layers: 2,
        heads: 4,
        channels: 32,
        ffn_dim: 64,
        vocab: 96,
    });
    SurrogateModel::new(config, seed)
}

fn prompt(len: usize, seed: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 31 + seed * 7 + 3) % 96).collect()
}

fn budget() -> CacheBudget {
    CacheBudget::new(12)
        .with_recent_window(4)
        .with_sink_tokens(2)
}

/// Acceptance criterion 1: with `NoFaults` and a budgeted policy at steady
/// state (arenas at capacity, scratch warm), each decode step's net heap
/// delta is exactly zero — transient allocations must be matched by frees,
/// and nothing may accumulate.
#[test]
fn decode_steps_have_zero_steady_state_heap_growth() {
    let model = small_model(7);
    let heads = model.dims().heads;
    for policy in [
        CachePolicy::StreamingLlm,
        CachePolicy::H2o,
        CachePolicy::Aerp,
    ] {
        let mut cache = policy.build(budget(), heads);
        let mut faults = NoFaults;
        let mut state = GenerationState::new();
        prefill(
            &model,
            &mut state,
            &prompt(24, 1),
            cache.as_mut(),
            &mut faults,
        );
        // Warm up: reach eviction steady state and grow every scratch buffer
        // and arena to its working capacity.  AERP's cross-head retained-set
        // union takes a while to hit its high-water mark (the input slab
        // grows until then), hence the generous warm-up window.
        for _ in 0..192 {
            let _ = decode_step(&model, &mut state, None, cache.as_mut(), &mut faults);
        }
        let start = net_heap_bytes();
        for step in 0..32 {
            let out = decode_step(&model, &mut state, None, cache.as_mut(), &mut faults);
            drop(out);
            assert_eq!(
                net_heap_bytes() - start,
                0,
                "policy {} leaked heap at steady-state step {step}",
                policy.name()
            );
        }
    }
}

/// Acceptance criterion 2: for every policy the borrowed-view hot path and
/// the pre-arena reference implementation produce byte-identical token
/// streams and probability distributions.
#[test]
fn hot_path_streams_match_reference_for_all_policies() {
    let model = small_model(21);
    let heads = model.dims().heads;
    let config = GenerationConfig::greedy(12);
    let p = prompt(20, 2);
    for policy in CachePolicy::all() {
        let mut cache_fast = policy.build(budget(), heads);
        let mut cache_ref = policy.build(budget(), heads);
        let mut faults_fast = NoFaults;
        let mut faults_ref = NoFaults;
        let fast = run_with(
            &model,
            &p,
            config,
            None,
            cache_fast.as_mut(),
            &mut faults_fast,
        );
        let reference = run_with_via_entries(
            &model,
            &p,
            config,
            None,
            cache_ref.as_mut(),
            &mut faults_ref,
        );
        assert_eq!(
            fast.generated,
            reference.generated,
            "token stream diverged for policy {}",
            policy.name()
        );
        for (step, (a, b)) in fast
            .step_probs
            .iter()
            .zip(reference.step_probs.iter())
            .enumerate()
        {
            let a_bits: Vec<u32> = a.iter().map(|f| f.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|f| f.to_bits()).collect();
            assert_eq!(
                a_bits,
                b_bits,
                "probability bits diverged at step {step} for policy {}",
                policy.name()
            );
        }
        // The cache ends in the same state either way.
        assert_eq!(
            cache_fast.stats(),
            cache_ref.stats(),
            "cache stats diverged for policy {}",
            policy.name()
        );
    }
}

/// The corrupted-read staging path consumes fault-injector randomness in the
/// same order as the reference implementation, so streams stay byte-identical
/// under active fault injection too.
#[test]
fn hot_path_streams_match_reference_under_faults() {
    let model = small_model(33);
    let heads = model.dims().heads;
    let config = GenerationConfig::greedy(8);
    let p = prompt(16, 3);
    for policy in CachePolicy::all() {
        let mut cache_fast = policy.build(budget(), heads);
        let mut cache_ref = policy.build(budget(), heads);
        let mut faults_fast = ProbabilisticFaults::new(BitFlipRates::uniform(0.01), 17);
        let mut faults_ref = ProbabilisticFaults::new(BitFlipRates::uniform(0.01), 17);
        let fast = run_with(
            &model,
            &p,
            config,
            None,
            cache_fast.as_mut(),
            &mut faults_fast,
        );
        let reference = run_with_via_entries(
            &model,
            &p,
            config,
            None,
            cache_ref.as_mut(),
            &mut faults_ref,
        );
        assert_eq!(
            fast.generated,
            reference.generated,
            "faulted token stream diverged for policy {}",
            policy.name()
        );
        assert_eq!(
            faults_fast.stats(),
            faults_ref.stats(),
            "fault RNG consumption diverged for policy {}",
            policy.name()
        );
    }
}

/// Acceptance criterion 3 (stats regression): after a decode with heavy
/// eviction churn, the reported FP16 footprint equals the live-entry arena
/// footprint — not the peak capacity the buffers grew to, and with AERP's
/// recompute payloads counted once per layer.
#[test]
fn bytes_fp16_reports_live_arena_footprint_after_decode() {
    let model = small_model(11);
    let dims = *model.dims();
    let head_dim = dims.channels / dims.heads;
    let config = GenerationConfig::greedy(24);
    let p = prompt(32, 4);

    for policy in [CachePolicy::StreamingLlm, CachePolicy::H2o] {
        let mut cache = policy.build(budget(), dims.heads);
        let mut faults = NoFaults;
        run_with(&model, &p, config, None, cache.as_mut(), &mut faults);
        let stats = cache.stats();
        assert!(stats.evictions > 0, "{}", policy.name());
        assert_eq!(
            stats.bytes_fp16,
            stats.kv_entries * 2 * head_dim * 2,
            "policy {} must report stride × live entries",
            policy.name()
        );
    }

    // AERP: KV-format entries cost 2 vectors × head_dim per retaining head;
    // recompute-format tokens cost one channels-wide vector per *layer*.
    let mut cache = CachePolicy::Aerp.build(budget(), dims.heads);
    let mut faults = NoFaults;
    run_with(&model, &p, config, None, cache.as_mut(), &mut faults);
    let stats = cache.stats();
    assert!(stats.evictions > 0);
    assert_eq!(
        stats.bytes_fp16,
        stats.kv_entries * 2 * head_dim * 2 + stats.recompute_entries * dims.channels * 2,
        "AERP footprint must be per-head KV plus once-per-layer recompute"
    );
}
