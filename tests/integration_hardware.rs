//! Integration tests for the hardware experiments: the headline comparisons of
//! Figs. 13–16 and Tables 7–9 must reproduce the paper's orderings and trends.

use kelle::arch::{InferenceWorkload, Platform, PlatformKind};
use kelle::experiment::{self, DEFAULT_N_PRIME};
use kelle::model::{ModelConfig, ModelKind};

#[test]
fn figure13_headline_gains_and_ordering() {
    let summary = experiment::figure13(ModelKind::Llama2_7b, DEFAULT_N_PRIME);
    let kelle_speedup = summary.mean_speedup("Kelle+eDRAM");
    let kelle_eff = summary.mean_energy_efficiency("Kelle+eDRAM");
    // Paper headline: 3.9x / 4.5x. The analytical reproduction must land in
    // the same regime and preserve every pairwise ordering.
    assert!(
        kelle_speedup > 2.0 && kelle_speedup < 8.0,
        "{kelle_speedup}"
    );
    assert!(kelle_eff > 1.8 && kelle_eff < 8.0, "{kelle_eff}");
    assert!(summary.mean_speedup("AEP+SRAM") > 1.0);
    assert!(summary.mean_speedup("AERP+SRAM") >= summary.mean_speedup("AEP+SRAM"));
    assert!(kelle_speedup > summary.mean_speedup("AERP+SRAM"));
    assert!(
        summary.mean_energy_efficiency("AERP+SRAM") > summary.mean_energy_efficiency("AEP+SRAM")
    );
    // eDRAM without the co-designed algorithms is faster but wastes energy.
    assert!(summary.mean_speedup("Original+eDRAM") >= 1.0);
    assert!(summary.mean_energy_efficiency("Original+eDRAM") < 1.0);
}

#[test]
fn figure13_gap_grows_with_decode_length() {
    let summary = experiment::figure13(ModelKind::Llama2_7b, DEFAULT_N_PRIME);
    let speedup_for = |workload: &str| {
        summary
            .rows
            .iter()
            .find(|r| r.workload == workload && r.platform == "Kelle+eDRAM")
            .map(|r| r.speedup)
            .expect("row present")
    };
    assert!(speedup_for("PG") > speedup_for("TQ"));
    assert!(speedup_for("TQ") > speedup_for("LA"));
}

#[test]
fn figure14_kelle_beats_external_accelerators_on_decode_heavy_work() {
    let summary = experiment::figure14(ModelKind::Llama2_7b, DEFAULT_N_PRIME);
    let kelle = summary.mean_energy_efficiency("Kelle");
    for other in ["LLM.npu", "DynaX", "COMET"] {
        assert!(
            kelle > summary.mean_energy_efficiency(other),
            "Kelle ({kelle}) vs {other} ({})",
            summary.mean_energy_efficiency(other)
        );
    }
}

#[test]
fn table7_table8_table9_trends() {
    // Table 7: the gain shrinks as the budget grows but stays above 1x.
    let t7 = experiment::table7(ModelKind::Llama3_2_3b, &[2048, 3500, 5250, 7000, 8750]);
    assert!(t7.first().unwrap().1 > t7.last().unwrap().1);
    assert!(t7.last().unwrap().1 > 1.0);

    // Table 8: shorter retention (more frequent refresh) erodes but does not
    // eliminate the gain.
    let t8 = experiment::table8(ModelKind::Llama3_2_3b, InferenceWorkload::pg19());
    assert_eq!(t8.len(), 3);
    assert!(t8[0].1 >= t8[2].1);
    assert!(t8[2].1 > 1.0);

    // Table 9: smaller batches shrink the gain but Kelle still wins.
    let t9 = experiment::table9(ModelKind::Llama2_7b, &[16, 4, 1]);
    let kelle_gain = |row: &(usize, Vec<(String, f64)>)| {
        row.1
            .iter()
            .find(|(name, _)| name == "Kelle+eDRAM")
            .map(|(_, g)| *g)
            .unwrap()
    };
    assert!(kelle_gain(&t9[0]) > kelle_gain(&t9[2]));
    assert!(kelle_gain(&t9[2]) > 1.0);
}

#[test]
fn figure15_and_16_ablations() {
    let (with_recompute, without_recompute) = experiment::figure15a(ModelKind::Llama2_13b);
    assert!(with_recompute < without_recompute);

    let f15b = experiment::figure15b(ModelKind::Llama2_7b);
    assert!(f15b.last().unwrap().1 >= f15b[0].1);

    let f16a = experiment::figure16a(ModelKind::Llama2_7b);
    assert!(!f16a[0].1.compute_bound && f16a[2].1.compute_bound);

    let f16b = experiment::figure16b(ModelKind::Llama2_7b);
    // Long inputs with short outputs are prefill-dominated; long outputs shift
    // energy toward decode-time DRAM traffic.
    let prefill_heavy = f16b.iter().find(|(l, _, _)| l == "16K-128").unwrap();
    let decode_heavy = f16b.iter().find(|(l, _, _)| l == "2K-2048").unwrap();
    assert!(prefill_heavy.1 > decode_heavy.1);
    assert!(decode_heavy.2 > prefill_heavy.2);
}

#[test]
fn area_and_power_reconstruction_is_sane() {
    let (area, power) = experiment::area_power_report();
    assert!(area.onchip_total_mm2() > 7.0 && area.onchip_total_mm2() < 12.0);
    assert!(power.onchip_total_w() > 3.0 && power.onchip_total_w() < 12.0);
}

#[test]
fn prefill_is_compute_bound_and_decode_is_memory_bound() {
    let model = ModelConfig::for_kind(ModelKind::Llama2_7b);
    let platform = Platform::preset(PlatformKind::KelleEdram);
    let long_prefill = platform.simulate(
        &model,
        &InferenceWorkload::long_input(8192, 128),
        Some(DEFAULT_N_PRIME),
    );
    let long_decode = platform.simulate(&model, &InferenceWorkload::pg19(), Some(DEFAULT_N_PRIME));
    assert!(long_prefill.prefill.latency_s > long_prefill.decode.latency_s * 0.1);
    assert!(long_decode.decode.latency_s > long_decode.prefill.latency_s);
}
