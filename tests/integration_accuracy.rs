//! Integration tests for the accuracy experiments: the orderings the paper's
//! Tables 2–4 and Fig. 8 rely on must hold for the surrogate reproduction.

use kelle::accuracy::{evaluate_method, AccuracyConfig, Method};
use kelle::cache::CacheBudget;
use kelle::edram::RefreshPolicy;
use kelle::model::fault::BitFlipRates;
use kelle::workloads::TaskKind;

fn quick(task: TaskKind) -> AccuracyConfig {
    let mut config = AccuracyConfig::for_task(task);
    config.prompts = 1;
    config
}

#[test]
fn fig8a_ppl_degrades_monotonically_with_error_rate() {
    // Uniform bit-flip error sweep: higher rates must not improve fidelity.
    let mut previous_kl = -1.0;
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 5e-2] {
        let config = quick(TaskKind::WikiText2)
            .with_explicit_rates(BitFlipRates::uniform(rate))
            .with_refresh_policy(RefreshPolicy::Conservative);
        let result = evaluate_method(&config, Method::Kelle);
        assert!(
            result.fidelity.mean_kl >= previous_kl - 0.05,
            "rate {rate}: KL {} < previous {previous_kl}",
            result.fidelity.mean_kl
        );
        previous_kl = result.fidelity.mean_kl;
    }
}

#[test]
fn fig8c_msb_errors_hurt_more_than_lsb_errors() {
    let rate = 5e-2;
    let msb_only = BitFlipRates {
        hst_msb: rate,
        hst_lsb: 0.0,
        lst_msb: rate,
        lst_lsb: 0.0,
    };
    let lsb_only = BitFlipRates {
        hst_msb: 0.0,
        hst_lsb: rate,
        lst_msb: 0.0,
        lst_lsb: rate,
    };
    let msb = evaluate_method(
        &quick(TaskKind::WikiText2).with_explicit_rates(msb_only),
        Method::Kelle,
    );
    let lsb = evaluate_method(
        &quick(TaskKind::WikiText2).with_explicit_rates(lsb_only),
        Method::Kelle,
    );
    assert!(
        msb.fidelity.mean_kl > lsb.fidelity.mean_kl,
        "MSB corruption ({}) should hurt more than LSB corruption ({})",
        msb.fidelity.mean_kl,
        lsb.fidelity.mean_kl
    );
}

#[test]
fn table3_accuracy_declines_with_smaller_budgets() {
    // LLaMA2-7B accuracy vs cache budget: smaller N' should not improve the
    // fidelity proxy.
    let task = TaskKind::ArcEasy;
    let (prompt_len, _) = task.surrogate_lengths();
    let mut agreements = Vec::new();
    for budget_tokens in [prompt_len, prompt_len / 2, prompt_len / 4, 8] {
        let budget = CacheBudget::new(budget_tokens.max(4))
            .with_recent_window((budget_tokens / 2).max(2))
            .with_sink_tokens(2);
        let config = quick(task)
            .with_budget(budget)
            .with_refresh_policy(RefreshPolicy::Conservative);
        let result = evaluate_method(&config, Method::Kelle);
        agreements.push(result.fidelity.top1_agreement);
    }
    // Largest budget at least as faithful as the smallest.
    assert!(
        agreements.first().unwrap() >= agreements.last().unwrap(),
        "agreements {agreements:?}"
    );
}

#[test]
fn table2_kelle_competitive_with_h2o_and_better_than_streaming() {
    let config = quick(TaskKind::ArcChallenge);
    let kelle = evaluate_method(&config, Method::Kelle);
    let h2o = evaluate_method(&config, Method::H2o);
    let streaming = evaluate_method(&config, Method::StreamingLlm);
    // Kelle tracks H2O closely (both keep heavy hitters) and does not lose to
    // the recency-only policy (small tolerance for single-prompt proxy noise).
    assert!(
        kelle.score >= streaming.score * 0.97,
        "kelle {} vs streaming {}",
        kelle.score,
        streaming.score
    );
    assert!(
        kelle.score >= h2o.score * 0.85,
        "kelle {} vs h2o {}",
        kelle.score,
        h2o.score
    );
}

#[test]
fn table4_2drp_beats_uniform_at_matched_average_rate() {
    // Compare 2DRP against a uniform policy with the same *average* bit-flip
    // rate; the paper's Table 4 shows 2DRP preserves accuracy better.
    let task = TaskKind::ArcEasy;
    let twodrp_policy = RefreshPolicy::two_dimensional_default();
    let retention = kelle::edram::RetentionModel::default();
    let avg_rate = twodrp_policy.bit_flip_rates(&retention).average();

    let twodrp = evaluate_method(
        &quick(task).with_refresh_policy(twodrp_policy),
        Method::Kelle,
    );
    let uniform = evaluate_method(
        &quick(task).with_explicit_rates(BitFlipRates::uniform(avg_rate)),
        Method::Kelle,
    );
    assert!(
        twodrp.fidelity.mean_kl <= uniform.fidelity.mean_kl * 1.05 + 1e-6,
        "2DRP KL {} vs uniform KL {}",
        twodrp.fidelity.mean_kl,
        uniform.fidelity.mean_kl
    );
}

#[test]
fn table5_quality_proxies_stay_close_to_reference() {
    for task in TaskKind::table5() {
        let config = quick(task);
        let kelle = evaluate_method(&config, Method::Kelle);
        let reference = task.llama2_7b_fp16_reference();
        assert!(
            kelle.score > reference * 0.3,
            "{task:?}: score {} vs reference {reference}",
            kelle.score
        );
        assert!(kelle.score <= reference * 1.001);
    }
}
