#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Front-end acceptance suite: the async submit/poll serving surface
//! (`kelle::front`) must deliver **bit-identical** token streams, traces,
//! probability-bearing fault statistics and batch metrics to the synchronous
//! `serve_batch_parallel` path — for all five cache policies, both
//! parallelism axes, every worker count and both executor protocols
//! (sticky-shard and work-stealing) — while adding backpressure, mid-stream
//! cancel/drain and chaos tolerance on top.
//!
//! The CI determinism gate runs this suite at explicit worker counts via
//! `KELLE_TEST_WORKERS` (comma-separated, default {1, 2, 4}) and chaos seeds
//! via `KELLE_CHAOS_SEEDS` (default {7, 11, 23}).

use kelle::front::{ExecutorKind, FrontConfig, StreamPoll, SubmitError, TokenStream};
use kelle::scheduler::ServeEvent;
use kelle::tier::TierConfig;
use kelle::{
    BatchOutcome, BatchScheduler, CachePolicy, ChaosConfig, InlineExecutor, KelleEngine,
    ParallelAxis, PrefixSharingConfig, SchedulerConfig, ServeRequest, ServingFront, ShedReason,
};

/// Worker counts under test: `KELLE_TEST_WORKERS` or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Fault-plan seeds under test: `KELLE_CHAOS_SEEDS` or {7, 11, 23} by
/// default.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("KELLE_CHAOS_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad KELLE_CHAOS_SEEDS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![7, 11, 23],
    }
}

/// Asserts two batch outcomes are bit-identical in every stream-affecting
/// observable.  Executor-protocol traffic (`parallel`) is *expected* to
/// differ — that asymmetry is the point of the sticky shard — so it is not
/// compared here.
fn assert_outcomes_identical(a: &BatchOutcome, b: &BatchOutcome, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: request count");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.generated, y.generated, "{label}: stream of request {i}");
        assert_eq!(x.trace, y.trace, "{label}: trace of request {i}");
        assert_eq!(x.cache, y.cache, "{label}: cache stats of request {i}");
        assert_eq!(x.faults, y.faults, "{label}: fault stats of request {i}");
        assert_eq!(x.hardware, y.hardware, "{label}: hardware of request {i}");
        assert_eq!(x.shed, y.shed, "{label}: shed reason of request {i}");
        assert_eq!(
            (x.prefilled_tokens, x.prefix_hit_tokens),
            (y.prefilled_tokens, y.prefix_hit_tokens),
            "{label}: prefill accounting of request {i}"
        );
    }
    assert_eq!(a.stats, b.stats, "{label}: aggregate stats");
    assert_eq!(a.contention, b.contention, "{label}: contention metrics");
    assert_eq!(a.prefix, b.prefix, "{label}: prefix metrics");
}

fn shared_prefix() -> Vec<usize> {
    (0..24).map(|i| (i * 7 + 5) % 512).collect()
}

/// One request per cache policy riding the shared prefix, with staggered
/// decode lengths, plus a non-prefix straggler with a seed override.
fn policy_mix() -> Vec<ServeRequest> {
    let prefix = shared_prefix();
    let mut requests: Vec<ServeRequest> = CachePolicy::all()
        .into_iter()
        .enumerate()
        .map(|(i, policy)| {
            let mut prompt = prefix.clone();
            prompt.extend([100 + i, 200 + i, 300 + i]);
            ServeRequest::builder(prompt)
                .decode_len(3 + i)
                .policy(policy)
                .build()
        })
        .collect();
    requests.push(
        ServeRequest::builder(vec![9, 8, 7, 6, 5, 4])
            .decode_len(4)
            .seed(1234)
            .build(),
    );
    requests
}

fn sharing_engine(seed: u64, workers: usize) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(seed)
        .workers(workers)
        .build();
    assert!(engine.publish_prefix(&shared_prefix()));
    engine
}

/// Drains one stream to its end, returning its tokens and terminal shed.
fn read_stream(
    front: &mut ServingFront<'_, '_>,
    stream: &TokenStream,
) -> (Vec<usize>, Option<ShedReason>) {
    let mut tokens = Vec::new();
    loop {
        match front.recv(stream) {
            StreamPoll::Token(token) => tokens.push(token),
            StreamPoll::Finished { shed } => return (tokens, shed),
            StreamPoll::Pending => panic!(
                "request {} stalled with the front unable to progress",
                stream.request()
            ),
        }
    }
}

#[test]
fn front_streams_are_bit_identical_to_synchronous_serving() {
    let sequential_engine = sharing_engine(7, 1);
    let sequential = sequential_engine.serve_batch(policy_mix());
    for kind in [ExecutorKind::Sticky, ExecutorKind::Stealing] {
        for axis in [ParallelAxis::Session, ParallelAxis::Intra] {
            for workers in worker_counts() {
                let label = format!("kind={kind:?}, axis={axis:?}, workers={workers}");
                let engine = sharing_engine(7, workers);
                let config = FrontConfig::default()
                    .with_executor(kind)
                    .with_scheduler(SchedulerConfig::default().with_parallel_axis(axis));
                let (streams, outcome) = engine.front(config, |front| {
                    let handles: Vec<TokenStream> = policy_mix()
                        .into_iter()
                        .map(|request| front.submit(request).expect("unbounded queue"))
                        .collect();
                    handles
                        .iter()
                        .map(|stream| read_stream(front, stream))
                        .collect::<Vec<_>>()
                });
                assert_outcomes_identical(&sequential, &outcome, &label);
                for (i, ((tokens, shed), reference)) in
                    streams.iter().zip(sequential.outcomes.iter()).enumerate()
                {
                    assert_eq!(tokens, &reference.generated, "{label}: stream {i}");
                    assert_eq!(*shed, None, "{label}: stream {i} finishes naturally");
                }
                assert_eq!(
                    engine.prefix_stats(),
                    sequential_engine.prefix_stats(),
                    "{label}: prefix-store traffic"
                );
            }
        }
    }
}

#[test]
fn a_full_admission_queue_rejects_typed_and_blocking_submit_waits() {
    let engine = sharing_engine(3, 2);
    // Capacity for roughly one resident request: everything else queues.
    let config = FrontConfig::default()
        .with_queue_capacity(1)
        .with_scheduler(
            SchedulerConfig::unbounded().with_kv_capacity_bytes(engine.kv_footprint_bytes(4)),
        );
    let requests: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::new(vec![10 + i, 20 + i, 30 + i], 3))
        .collect();
    let (rejections, outcome) = engine.front(config, |front| {
        let mut rejections = 0usize;
        let mut handles = Vec::new();
        for request in requests.clone() {
            match front.submit(request.clone()) {
                Ok(stream) => handles.push(stream),
                Err(SubmitError::QueueFull { waiting }) => {
                    assert_eq!(waiting, 1, "rejection reports the queue depth");
                    rejections += 1;
                    handles.push(
                        front
                            .submit_blocking(request)
                            .expect("blocking submit pumps a slot free"),
                    );
                }
                Err(SubmitError::Draining) => unreachable!("nothing drains here"),
            }
        }
        for stream in &handles {
            let (_, shed) = read_stream(front, stream);
            assert_eq!(shed, None);
        }
        rejections
    });
    assert!(
        rejections > 0,
        "the bounded queue must reject at least once"
    );
    let baseline = engine.serve_batch_with(
        requests,
        SchedulerConfig::unbounded().with_kv_capacity_bytes(engine.kv_footprint_bytes(4)),
    );
    for (a, b) in outcome.outcomes.iter().zip(baseline.outcomes.iter()) {
        assert_eq!(a.generated, b.generated, "backpressure never changes bits");
    }
}

#[test]
fn idle_paused_sessions_consume_no_queue_traffic() {
    let engine = KelleEngine::builder().seed(5).workers(2).build();
    let config = FrontConfig::default()
        .with_executor(ExecutorKind::Sticky)
        .with_stream_capacity(1);
    let requests: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::new(vec![i + 1, i + 7], 16))
        .collect();
    let ((), outcome) = engine.front(config, |front| {
        let handles: Vec<TokenStream> = requests
            .clone()
            .into_iter()
            .map(|request| front.submit(request).expect("unbounded queue"))
            .collect();
        // Pump until every stream is at capacity: all sessions paused.
        while front.pump() {}
        for stream in &handles {
            assert_eq!(stream.buffered(), 1, "each stream pauses at capacity");
        }
        let soak_start = *front.scheduler().parallel_metrics();
        // The soak: an idle (unpolled) fleet pumped hard must move nothing
        // across threads — the parked sessions stay on their shards.
        for _ in 0..50 {
            assert!(!front.pump(), "a fully paused front makes no progress");
        }
        let soaked = *front.scheduler().parallel_metrics();
        assert_eq!(
            soaked.queue_crossings, soak_start.queue_crossings,
            "idle pinned sessions must not cross the queue"
        );
        assert_eq!(soaked.sessions_migrated, 0, "pinning never migrates");
        // Wake the fleet back up and finish normally.
        for stream in &handles {
            let (tokens, shed) = read_stream(front, stream);
            assert_eq!(shed, None);
            assert_eq!(tokens.len(), 16, "the full decode, buffered token included");
        }
    });
    let baseline = engine.serve_batch(requests);
    for (a, b) in outcome.outcomes.iter().zip(baseline.outcomes.iter()) {
        assert_eq!(a.generated, b.generated, "the soak never changes bits");
    }
}

#[test]
fn cancel_and_drain_through_the_front_release_every_byte() {
    let engine = sharing_engine(9, 2);
    let config = FrontConfig::default()
        .with_executor(ExecutorKind::Sticky)
        .with_scheduler(
            SchedulerConfig::default()
                .with_tiering(TierConfig::with_edram_budget(engine.kv_footprint_bytes(30))),
        );
    let ((), outcome) = engine.front(config, |front| {
        let doomed = front
            .submit(
                ServeRequest::builder({
                    let mut prompt = shared_prefix();
                    prompt.extend([401, 402]);
                    prompt
                })
                .decode_len(60)
                .build(),
            )
            .expect("unbounded queue");
        let survivor = front
            .submit(ServeRequest::new(vec![7, 7, 7], 5))
            .expect("unbounded queue");
        front.pump();
        front.pump();
        front.pump();
        assert!(front.cancel(doomed.request()), "cancel hits a live request");
        let (partial, shed) = read_stream(front, &doomed);
        assert_eq!(shed, Some(ShedReason::Cancelled));
        assert!(!partial.is_empty(), "cancel keeps the partial output");
        front.drain();
        assert!(
            matches!(
                front.submit(ServeRequest::new(vec![1], 1)),
                Err(SubmitError::Draining)
            ),
            "draining is terminal for admission"
        );
        let (_, shed) = read_stream(front, &survivor);
        assert_eq!(shed, None, "drain completes active requests");
        // Every byte is back: lease ledger empty, shared prefix detached.
        assert_eq!(front.scheduler().ledger().live_bytes(), 0);
        assert_eq!(front.scheduler().ledger().shared_bytes(), 0);
    });
    assert_eq!(outcome.outcomes[0].shed, Some(ShedReason::Cancelled));
    assert_eq!(outcome.outcomes[1].shed, None);
}

#[test]
fn chaos_storms_through_the_front_are_bit_identical_and_leak_free() {
    let baseline = sharing_engine(7, 1).serve_batch(policy_mix());
    for kind in [ExecutorKind::Sticky, ExecutorKind::Stealing] {
        for seed in chaos_seeds() {
            let label = format!("kind={kind:?}, chaos seed={seed}");
            let engine = sharing_engine(7, 2);
            let chaos = ChaosConfig::default()
                .with_seed(seed)
                .with_worker_panics(200)
                .with_migration_faults(250)
                .with_ledger_blips(100)
                .with_max_retries(12);
            let config = FrontConfig::default().with_executor(kind).with_scheduler(
                SchedulerConfig::default()
                    .with_tiering(TierConfig::with_edram_budget(
                        engine.kv_footprint_bytes(shared_prefix().len() + 6),
                    ))
                    .with_chaos(chaos),
            );
            let (streams, outcome) = engine.front(config, |front| {
                let handles: Vec<TokenStream> = policy_mix()
                    .into_iter()
                    .map(|request| front.submit(request).expect("unbounded queue"))
                    .collect();
                let streams: Vec<_> = handles
                    .iter()
                    .map(|stream| read_stream(front, stream))
                    .collect();
                assert!(
                    front.worker_losses().is_empty(),
                    "{label}: the replay budget must absorb every panic"
                );
                // Nothing leaks once the storm settles.
                assert_eq!(front.scheduler().ledger().live_bytes(), 0, "{label}");
                assert_eq!(front.scheduler().ledger().shared_bytes(), 0, "{label}");
                streams
            });
            for (i, ((tokens, shed), reference)) in
                streams.iter().zip(baseline.outcomes.iter()).enumerate()
            {
                assert_eq!(tokens, &reference.generated, "{label}: stream {i}");
                assert_eq!(*shed, None, "{label}: stream {i} survives the storm");
            }
            assert!(
                outcome.chaos.injected_panics > 0,
                "{label}: the storm must actually panic workers"
            );
            assert_eq!(outcome.chaos.lost_requests, 0, "{label}");
        }
    }
}

#[test]
fn sticky_shards_cross_the_queue_strictly_less_than_stealing() {
    for workers in worker_counts() {
        let engine = KelleEngine::builder().seed(13).workers(workers).build();
        let fleet: Vec<ServeRequest> = (0..6)
            .map(|i| ServeRequest::new(vec![i + 1, i + 2, i + 3], 24))
            .collect();
        let run = |kind: ExecutorKind| {
            let requests = fleet.clone();
            engine
                .front(FrontConfig::default().with_executor(kind), move |front| {
                    for request in requests {
                        front.submit(request).expect("unbounded queue");
                    }
                })
                .1
        };
        let sticky = run(ExecutorKind::Sticky);
        let stealing = run(ExecutorKind::Stealing);
        for (a, b) in sticky.outcomes.iter().zip(stealing.outcomes.iter()) {
            assert_eq!(a.generated, b.generated, "workers={workers}");
        }
        assert_eq!(sticky.parallel.ticks, stealing.parallel.ticks);
        assert!(
            sticky.parallel.queue_crossings < stealing.parallel.queue_crossings,
            "workers={workers}: sticky {} !< stealing {}",
            sticky.parallel.queue_crossings,
            stealing.parallel.queue_crossings,
        );
        assert_eq!(
            sticky.parallel.sessions_migrated, 0,
            "workers={workers}: pinning never migrates"
        );
    }
}

#[test]
fn shed_reasons_surface_through_the_event_stream_as_they_happen() {
    // Satellite regression: the streaming path used to report sheds only in
    // the final outcome; `ServeEvent::Shed` must now deliver them live.
    let engine = KelleEngine::builder().seed(3).build();
    let capacity = engine.kv_footprint_bytes(4);
    let config = SchedulerConfig::default().with_kv_capacity_bytes(capacity);
    let mut scheduler = BatchScheduler::with_config(&engine, config);
    scheduler.submit(
        ServeRequest::builder(vec![1, 2, 3, 4])
            .decode_len(10)
            .deadline_ticks(4)
            .build(),
    );
    scheduler.submit(
        ServeRequest::builder(vec![5, 6, 7, 8])
            .decode_len(2)
            .queue_timeout_ticks(2)
            .build(),
    );
    assert_eq!(scheduler.waiting(), 1, "the fixture must queue request 1");
    let mut tokens = Vec::new();
    let mut sheds = Vec::new();
    let outcome = scheduler
        .try_run_to_completion_events_with(&mut InlineExecutor, |event| match event {
            ServeEvent::Token { request, token, .. } => tokens.push((request, token)),
            ServeEvent::Shed { request, reason } => sheds.push((request, reason)),
        })
        .expect("no chaos: no worker can be lost");
    assert_eq!(
        sheds,
        vec![
            (1, ShedReason::QueueTimeout),
            (0, ShedReason::DeadlineExceeded),
        ],
        "both sheds surface live, in the order they happened"
    );
    assert_eq!(
        tokens.len(),
        outcome.outcomes[0].generated.len(),
        "the deadline request streamed its partial output before shedding"
    );
    assert_eq!(outcome.outcomes[0].shed, Some(ShedReason::DeadlineExceeded));
    assert_eq!(outcome.outcomes[1].shed, Some(ShedReason::QueueTimeout));
    // The same sheds terminate front-end streams with their reasons.
    let ((), _) = engine.front(
        FrontConfig::default()
            .with_scheduler(SchedulerConfig::default().with_kv_capacity_bytes(capacity)),
        |front| {
            let deadline = front
                .submit(
                    ServeRequest::builder(vec![1, 2, 3, 4])
                        .decode_len(10)
                        .deadline_ticks(4)
                        .build(),
                )
                .expect("unbounded queue");
            let timeout = front
                .submit(
                    ServeRequest::builder(vec![5, 6, 7, 8])
                        .decode_len(2)
                        .queue_timeout_ticks(2)
                        .build(),
                )
                .expect("queue capacity is unbounded; KV capacity queues it");
            let (partial, shed) = read_stream(front, &deadline);
            assert_eq!(shed, Some(ShedReason::DeadlineExceeded));
            assert_eq!(partial.len(), 4, "4 deadline ticks yield 4 tokens");
            let (none, shed) = read_stream(front, &timeout);
            assert_eq!(shed, Some(ShedReason::QueueTimeout));
            assert!(none.is_empty(), "a queue timeout never decoded");
        },
    );
}
