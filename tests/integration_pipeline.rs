//! End-to-end integration tests spanning the whole stack: surrogate model →
//! cache policies → fault injection → engine → hardware model.

use kelle::cache::{AerpCache, CacheBudget, CachePolicy};
use kelle::model::generation::{evaluate_against_reference, run_reference};
use kelle::model::{
    fault::NoFaults, GenerationConfig, KvCacheBackend, ModelConfig, ModelKind, SurrogateModel,
};
use kelle::workloads::{TaskKind, TokenStreamGenerator};
use kelle::{EngineConfig, KelleEngine};

fn surrogate() -> SurrogateModel {
    SurrogateModel::new(ModelConfig::for_kind(ModelKind::Llama2_7b), 33)
}

#[test]
fn every_cache_policy_runs_through_the_model() {
    let model = surrogate();
    let generator = TokenStreamGenerator::new(model.dims().vocab, 5);
    let prompt = generator.prompt(TaskKind::Piqa, 0);
    let config = GenerationConfig::greedy(16);
    let reference = run_reference(&model, &prompt.tokens, config);

    let heads = model.dims().heads;
    let budget = CacheBudget::new(24)
        .with_recent_window(8)
        .with_sink_tokens(2);

    for policy in CachePolicy::all() {
        let mut cache = policy.build(budget, heads);
        let mut faults = NoFaults;
        let (metrics, trace) = evaluate_against_reference(
            &model,
            &prompt.tokens,
            config,
            &reference,
            cache.as_mut(),
            &mut faults,
        );
        assert_eq!(metrics.steps, 16, "policy {}", cache.name());
        assert!(metrics.mean_kl.is_finite(), "policy {}", cache.name());
        assert_eq!(trace.steps.len(), 16);
        // The uncompressed reference policy must reproduce the reference
        // exactly; quantized full retention stays mostly faithful; budgeted
        // policies may legitimately diverge once eviction bites, so only
        // finite metrics are required of them.
        match policy {
            CachePolicy::Full => {
                assert!(metrics.top1_agreement >= 0.99, "policy {}", cache.name())
            }
            CachePolicy::QuaRotInt4 => {
                assert!(metrics.top1_agreement > 0.0, "policy {}", cache.name())
            }
            _ => {}
        }
    }
}

#[test]
fn budgeted_policies_stay_within_budget_after_prefill() {
    let model = surrogate();
    let generator = TokenStreamGenerator::new(model.dims().vocab, 6);
    let prompt = generator.prompt(TaskKind::Qasper, 0);
    let heads = model.dims().heads;
    let layers = model.dims().layers;
    let budget = CacheBudget::new(16)
        .with_recent_window(4)
        .with_sink_tokens(2);

    let mut cache = AerpCache::new(budget, heads);
    let mut faults = NoFaults;
    let config = GenerationConfig::greedy(8);
    let reference = run_reference(&model, &prompt.tokens, config);
    evaluate_against_reference(
        &model,
        &prompt.tokens,
        config,
        &reference,
        &mut cache,
        &mut faults,
    );
    for layer in 0..layers {
        for head in 0..heads {
            assert!(
                cache.entries(layer, head).len() <= budget.max_tokens,
                "layer {layer} head {head} exceeds budget"
            );
        }
    }
    assert!(cache.stats().evictions > 0);
}

#[test]
fn engine_serves_multiple_models() {
    for kind in [
        ModelKind::Llama2_7b,
        ModelKind::Mistral7b,
        ModelKind::Opt6_7b,
    ] {
        let config = EngineConfig {
            model: kind,
            ..EngineConfig::default()
        };
        let engine = KelleEngine::new(config);
        let outcome = engine.serve_one(&[1, 2, 3, 4, 5], 6);
        assert_eq!(outcome.generated.len(), 6, "{kind:?}");
        assert!(outcome.hardware.total_energy_j() > 0.0);
    }
}

#[test]
fn aerp_uses_recompute_storage_and_model_recomputes() {
    let model = surrogate();
    let generator = TokenStreamGenerator::new(model.dims().vocab, 9);
    let prompt = generator.prompt(TaskKind::WikiText2, 0);
    let heads = model.dims().heads;
    let budget = CacheBudget::new(32)
        .with_recent_window(8)
        .with_sink_tokens(2);
    let mut cache = AerpCache::new(budget, heads);
    let mut faults = NoFaults;
    let config = GenerationConfig::greedy(12);
    let reference = run_reference(&model, &prompt.tokens, config);
    let (_, trace) = evaluate_against_reference(
        &model,
        &prompt.tokens,
        config,
        &reference,
        &mut cache,
        &mut faults,
    );
    // The popularity rule should have converted at least some tokens to
    // recompute storage, and the attention path must have exercised them.
    assert!(cache.stats().recompute_entries > 0);
    assert!(trace.recompute_fraction() > 0.0);
}
