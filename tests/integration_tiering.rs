#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Tiered-memory acceptance suite: the eDRAM → DRAM → NVMe hierarchy
//! (`kelle::tier`) must keep token streams, per-step traces,
//! probability-bearing fault statistics and per-request hardware outcomes
//! **bit-identical** to an unlimited-eDRAM run — for all five cache
//! policies, under single-threaded and parallel serving, including forced
//! mid-stream demote/promote round-trips of active sessions and demotion of
//! a shared prefix segment while sessions reference it.
//!
//! Like the parallel suite, the CI determinism gate runs this file at
//! explicit worker counts via `KELLE_TEST_WORKERS` (comma-separated);
//! without it the suite defaults to {1, 2, 4}.

use kelle::edram::MemoryTier;
use kelle::tier::{TierConfig, TieringMetrics};
use kelle::{
    BatchOutcome, BatchScheduler, CachePolicy, KelleEngine, PrefixSharingConfig, SchedulerConfig,
    ServeRequest,
};
use proptest::prelude::*;

/// Worker counts under test: `KELLE_TEST_WORKERS` or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Asserts the functional and hardware observables of two batches are
/// bit-identical, request by request.  Queueing metrics are *not* compared:
/// tiering admits against the eDRAM budget, so requests may queue longer
/// than in an unbounded run — by design, without touching any stream.
fn assert_streams_identical(a: &BatchOutcome, b: &BatchOutcome, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: request count");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.generated, y.generated, "{label}: stream of request {i}");
        assert_eq!(x.trace, y.trace, "{label}: trace of request {i}");
        assert_eq!(x.cache, y.cache, "{label}: cache stats of request {i}");
        assert_eq!(x.faults, y.faults, "{label}: fault stats of request {i}");
        assert_eq!(x.hardware, y.hardware, "{label}: hardware of request {i}");
        assert_eq!(
            (x.prefilled_tokens, x.prefix_hit_tokens),
            (y.prefilled_tokens, y.prefix_hit_tokens),
            "{label}: prefill accounting of request {i}"
        );
    }
    assert_eq!(a.stats.requests, b.stats.requests, "{label}: request tally");
    assert_eq!(
        a.stats.tokens_generated, b.stats.tokens_generated,
        "{label}: token tally"
    );
}

fn shared_prefix() -> Vec<usize> {
    (0..24).map(|i| (i * 7 + 5) % 512).collect()
}

/// One request per cache policy riding the shared prefix, with staggered
/// decode lengths, plus a non-prefix straggler.
fn policy_mix() -> Vec<ServeRequest> {
    let prefix = shared_prefix();
    let mut requests: Vec<ServeRequest> = CachePolicy::all()
        .into_iter()
        .enumerate()
        .map(|(i, policy)| {
            let mut prompt = prefix.clone();
            prompt.extend([100 + i, 200 + i, 300 + i]);
            ServeRequest::builder(prompt)
                .decode_len(3 + i)
                .policy(policy)
                .build()
        })
        .collect();
    requests.push(
        ServeRequest::builder(vec![9, 8, 7, 6, 5, 4])
            .decode_len(4)
            .build(),
    );
    requests
}

fn sharing_engine(seed: u64) -> KelleEngine {
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .seed(seed)
        .build();
    assert!(engine.publish_prefix(&shared_prefix()));
    engine
}

/// A tiering config whose eDRAM holds roughly `tokens` full-scale KV tokens.
fn tiny_tiering(engine: &KelleEngine, tokens: usize) -> TierConfig {
    TierConfig::with_edram_budget(engine.kv_footprint_bytes(tokens))
}

#[test]
fn tiering_is_bit_identical_for_all_policies() {
    let baseline = sharing_engine(7).serve_batch(policy_mix());

    // eDRAM fits roughly one prompt: the mix overflows on chip, queues,
    // demotes and promotes — and changes nothing observable.
    let engine = sharing_engine(7);
    let config =
        SchedulerConfig::default().with_tiering(tiny_tiering(&engine, shared_prefix().len() + 6));
    let tiered = engine.serve_batch_with(policy_mix(), config);

    assert_streams_identical(&baseline, &tiered, "tiered vs unlimited");
    assert_ne!(tiered.tiering, TieringMetrics::default());
    assert!(
        tiered.tiering.edram.settled_peak_bytes <= engine.kv_footprint_bytes(30),
        "settled eDRAM residency must respect the budget"
    );
    assert_eq!(
        baseline.tiering,
        TieringMetrics::default(),
        "untiered runs report all-zero tiering metrics"
    );
}

#[test]
fn parallel_tiered_serving_matches_sequential_tiered_serving() {
    let probe = sharing_engine(7);
    let config =
        SchedulerConfig::default().with_tiering(tiny_tiering(&probe, shared_prefix().len() + 6));
    let sequential = probe.serve_batch_with(policy_mix(), config);
    let baseline = sharing_engine(7).serve_batch(policy_mix());
    for workers in worker_counts() {
        let engine = sharing_engine(7);
        let parallel = kelle::parallel::serve_batch_parallel(
            &engine,
            policy_mix(),
            config,
            workers,
            |_, _| {},
        );
        // Worker-count invariance is *total*: queueing, contention, prefix
        // and tiering metrics all match the sequential tiered run exactly
        // (the tier manager lives on the coordinating thread).
        assert_streams_identical(&sequential, &parallel, &format!("workers={workers}"));
        assert_eq!(
            sequential.stats, parallel.stats,
            "workers={workers}: aggregate stats"
        );
        assert_eq!(
            sequential.contention, parallel.contention,
            "workers={workers}: contention metrics"
        );
        assert_eq!(
            sequential.prefix, parallel.prefix,
            "workers={workers}: prefix metrics"
        );
        assert_eq!(
            sequential.tiering, parallel.tiering,
            "workers={workers}: tiering metrics"
        );
        // And the streams still match the unlimited-eDRAM baseline.
        assert_streams_identical(
            &baseline,
            &parallel,
            &format!("baseline, workers={workers}"),
        );
    }
}

#[test]
fn mid_stream_demote_promote_round_trips_are_invisible() {
    // An eDRAM of ~1 token is smaller than any session: the active session
    // is force-admitted, demoted by every end-of-tick rebalance and promoted
    // back before every decode step — a full demote→promote round trip per
    // generated token, mid-stream by construction.
    let requests: Vec<ServeRequest> = (0..3)
        .map(|i| {
            ServeRequest::builder(vec![i + 1, i + 2, i + 3, i + 4])
                .decode_len(4)
                .policy(CachePolicy::all()[i % 5])
                .build()
        })
        .collect();
    let engine = KelleEngine::builder().seed(13).build();
    let baseline = engine.serve_batch(requests.clone());

    let tiered_engine = KelleEngine::builder().seed(13).build();
    let config = SchedulerConfig::default().with_tiering(tiny_tiering(&tiered_engine, 1));
    let tiered = tiered_engine.serve_batch_with(requests, config);

    assert_streams_identical(&baseline, &tiered, "thrashing fleet");
    // Each session demotes after every non-final decode tick and promotes
    // before every non-first one: (decode_len - 1) round trips per session.
    let round_trips = (3 * (4 - 1)) as u64;
    assert!(
        tiered.tiering.demotions >= round_trips && tiered.tiering.promotions >= round_trips,
        "every decode tick must round-trip the active session \
         (demotions={}, promotions={}, expected >= {round_trips})",
        tiered.tiering.demotions,
        tiered.tiering.promotions
    );
    assert!(tiered.tiering.migration_time_s > 0.0);
    assert!(tiered.tiering.migration_energy_j > 0.0);
}

#[test]
fn referenced_shared_segment_demotes_and_replays_consistently() {
    let engine = sharing_engine(17);
    let prefix_len = shared_prefix().len();
    let segment_bytes = engine.kv_footprint_bytes(prefix_len);
    // eDRAM comfortably fits the segment plus one session's private bytes,
    // but not much more: as decode growth accumulates, the stale segment is
    // the lowest-credit resident and demotes first — while sessions still
    // reference it through the ledger's shared pool.
    let config =
        SchedulerConfig::default().with_tiering(tiny_tiering(&engine, prefix_len + 2 * 12));
    let mut scheduler = BatchScheduler::with_config(&engine, config);
    let mut requests = Vec::new();
    for i in 0..3 {
        let mut prompt = shared_prefix();
        prompt.extend([60 + i, 70 + i]);
        let request = ServeRequest::new(prompt, 8);
        requests.push(request.clone());
        scheduler.submit(request);
    }

    // The first publication gets shared-pool tag 0.
    assert!(scheduler.ledger().has_shared(0), "prefix attached on admit");
    let mut demoted_while_referenced = false;
    while !scheduler.is_idle() {
        scheduler.step();
        let tier = scheduler.tier().expect("tiering is enabled");
        if scheduler.ledger().has_shared(0)
            && tier
                .segment_tier(0)
                .is_some_and(|tier| tier != MemoryTier::Edram)
        {
            // Demoted off chip while at least one session holds it — the
            // ledger's dedup accounting is untouched by placement.
            demoted_while_referenced = true;
            assert_eq!(
                scheduler.ledger().dedup_savings_bytes(),
                2 * segment_bytes,
                "demotion must not disturb shared-pool savings"
            );
        }
    }
    assert!(
        demoted_while_referenced,
        "fixture must demote the segment while it is referenced"
    );
    let tiered = scheduler.finish().expect("batch is idle");
    assert_eq!(tiered.prefix.hit_requests, 3);
    assert_eq!(tiered.prefix.deduplicated_bytes, 2 * segment_bytes);

    // Streams match the unlimited run request-for-request.
    let baseline = sharing_engine(17).serve_batch(requests);
    assert_streams_identical(&baseline, &tiered, "segment demotion");
}

#[test]
fn store_eviction_of_a_referenced_prefix_is_copy_safe_for_budgeted_policies() {
    let prefix_a = shared_prefix();
    let prefix_b: Vec<usize> = (0..24).map(|i| (i * 11 + 3) % 512).collect();

    // Probe the store footprint of one published segment.
    let probe = sharing_engine(19);
    let segment_store_bytes = probe.prefix_stats().resident_bytes;
    assert!(segment_store_bytes > 0);

    // A store that holds exactly one segment: publishing B must evict A.
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled().with_store_budget_bytes(segment_store_bytes))
        .seed(19)
        .build();
    assert!(engine.publish_prefix(&prefix_a));

    let mut prompt = prefix_a.clone();
    prompt.extend([91, 92]);
    let request = ServeRequest::builder(prompt.clone())
        .decode_len(6)
        .policy(CachePolicy::Aerp)
        .build();

    let mut scheduler = BatchScheduler::new(&engine);
    scheduler.submit(request.clone());
    scheduler.step();
    // Mid-stream eviction: the active session replays segment A under a
    // budgeted policy while the store drops it — the session's privatized
    // copy (copy-on-evict arenas) keeps decoding unperturbed.
    assert!(engine.publish_prefix(&prefix_b));
    assert_eq!(engine.prefix_stats().evictions, 1, "A evicted for B");
    while !scheduler.is_idle() {
        scheduler.step();
    }
    let outcome = scheduler.finish().expect("batch is idle");
    assert!(
        outcome.outcomes[0].prefix_hit_tokens > 0,
        "A was hit before its eviction"
    );

    // The decode that straddled the eviction matches an eviction-free run.
    let baseline = sharing_engine(19).serve_batch(vec![request]);
    assert_streams_identical(&baseline, &outcome, "eviction mid-stream");

    // A later request on the evicted prefix misses cleanly — and, sharing
    // being stream-invariant, still generates the same tokens.
    let follow = engine.serve_batch(vec![ServeRequest::new(prompt.clone(), 3)]);
    assert_eq!(
        follow.outcomes[0].prefix_hit_tokens, 0,
        "A is gone from the store"
    );
    let solo = KelleEngine::builder()
        .seed(19)
        .build()
        .serve_one(&prompt, 3);
    assert_eq!(follow.outcomes[0].generated, solo.generated);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fleets under random tiny eDRAM budgets: settled per-tier
    /// residency never exceeds the bounded tiers' budgets, and every stream
    /// matches the unlimited run.
    #[test]
    fn settled_residency_respects_budgets_and_streams_never_change(
        seed in 0u64..500,
        shapes in proptest::collection::vec(0usize..10_000, 2..6),
        edram_tokens in 1usize..24,
    ) {
        let requests: Vec<ServeRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| {
                let prompt_len = 1 + shape % 12;
                let decode_len = 1 + (shape / 12) % 4;
                let policy_idx = (shape / 48) % 5;
                let prompt: Vec<usize> =
                    (0..prompt_len).map(|t| (seed as usize + i * 31 + t * 7) % 512).collect();
                ServeRequest::builder(prompt)
                    .decode_len(decode_len)
                    .policy(CachePolicy::all()[policy_idx])
                    .build()
            })
            .collect();
        let engine = KelleEngine::builder().seed(seed).build();
        let baseline = engine.serve_batch(requests.clone());

        let tiered_engine = KelleEngine::builder().seed(seed).build();
        let tiering = tiny_tiering(&tiered_engine, edram_tokens);
        let config = SchedulerConfig::default().with_tiering(tiering);
        let tiered = tiered_engine.serve_batch_with(requests, config);

        for (a, b) in baseline.outcomes.iter().zip(tiered.outcomes.iter()) {
            prop_assert_eq!(&a.generated, &b.generated);
            prop_assert_eq!(a.faults, b.faults);
            prop_assert_eq!(&a.trace, &b.trace);
            prop_assert_eq!(&a.hardware, &b.hardware);
        }
        prop_assert!(
            tiered.tiering.edram.settled_peak_bytes <= tiering.budgets.budget(MemoryTier::Edram)
        );
        prop_assert!(
            tiered.tiering.dram.settled_peak_bytes <= tiering.budgets.budget(MemoryTier::Dram)
        );
        // Conservation: whatever left a tier arrived somewhere else.
        let out_total = tiered.tiering.edram.out_bytes
            + tiered.tiering.dram.out_bytes
            + tiered.tiering.nvme.out_bytes;
        let in_total = tiered.tiering.edram.in_bytes
            + tiered.tiering.dram.in_bytes
            + tiered.tiering.nvme.in_bytes;
        prop_assert_eq!(out_total, in_total);
        prop_assert_eq!(tiered.tiering.migrated_bytes, out_total);
    }
}
