#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Property-based tests (proptest) on the core invariants of the
//! reproduction, spanning several crates.

use kelle::cache::{AerpCache, CacheBudget, KvCacheBackend};
use kelle::edram::{CapacityLedger, RefreshPolicy, RetentionModel};
use kelle::model::fault::NoFaults;
use kelle::model::{FullKvCache, ModelConfig, ModelKind, SurrogateModel};
use kelle::tensor::{ops, QuantFormat, QuantizedVector};
use kelle::{AdmissionPolicy, CachePolicy, KelleEngine, SchedulerConfig, ServeRequest};
use proptest::prelude::*;

fn surrogate() -> SurrogateModel {
    SurrogateModel::new(ModelConfig::for_kind(ModelKind::Llama2_7b), 17)
}

/// A pre-computed context token: (position, input vector, flat head-major
/// keys, flat head-major values).
type PreparedEntry = (usize, Vec<f32>, Vec<f32>, Vec<f32>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §2.2: Eq. 1 and Eq. 2 are invariant to the relative order of the KV
    /// pairs stored in the cache.  Inserting the same per-head KV entries in a
    /// different order (as happens when Kelle reuses an evicted token's slot)
    /// must not change the attention output for a fixed query token.
    #[test]
    fn attention_is_permutation_invariant(seed in 0u64..1000) {
        use kelle::model::attention::MultiHeadAttention;
        let model = surrogate();
        let heads = model.dims().heads;
        let weights = &model.weights().layers[0];
        let attn = MultiHeadAttention::new(weights, heads);

        // Pre-compute the per-head KV entries of 8 context tokens once.
        let vocab = model.dims().vocab;
        let entries: Vec<PreparedEntry> = (0..8)
            .map(|position| {
                let token = ((seed as usize) * 31 + position * 7) % vocab;
                let x = model.weights().embed(token, position);
                let (k, v) = attn.project_kv(&x, position);
                (position, x, k, v)
            })
            .collect();

        let head_dim = model.dims().channels / heads;
        let output_for = |order: &[usize]| {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            for &idx in order {
                let (position, x, k, v) = &entries[idx];
                cache.insert(0, *position, x, k, v, head_dim);
            }
            let query_x = model.weights().embed(3 % vocab, 8);
            attn.forward(0, 8, 8, &query_x, &mut cache, &mut faults).output
        };

        let forward: Vec<usize> = (0..entries.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = output_for(&forward);
        let b = output_for(&reversed);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    /// The AERP cache never exceeds its per-head budget once decoding starts,
    /// for any budget and insertion count.
    #[test]
    fn aerp_budget_never_exceeded(budget in 2usize..32, tokens in 1usize..80, heads in 1usize..6) {
        let mut cache = AerpCache::new(CacheBudget::new(budget), heads);
        cache.finish_prefill(0);
        let head_dim = 4;
        for t in 0..tokens {
            let keys: Vec<f32> = (0..heads)
                .flat_map(|h| vec![(t + h) as f32; head_dim])
                .collect();
            let values = keys.clone();
            cache.insert(0, t, &vec![t as f32; head_dim * heads], &keys, &values, head_dim);
            let scores: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| (e.token, 1.0 / (e.token + 1) as f32))
                .collect();
            cache.observe_attention(0, 0, &scores);
            for head in 0..heads {
                prop_assert!(cache.entries(0, head).len() <= budget);
            }
        }
        prop_assert!(cache.stats().insertions as usize == tokens);
    }

    /// Quantize/dequantize round trips are bounded by the format's step size.
    #[test]
    fn quantization_error_is_bounded(values in proptest::collection::vec(-4.0f32..4.0, 1..64)) {
        for format in [QuantFormat::Fp16, QuantFormat::Int8, QuantFormat::Int4] {
            let q = QuantizedVector::quantize(&values, format).unwrap();
            let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = match format {
                QuantFormat::Fp16 => (max_abs * 1e-3).max(1e-3),
                QuantFormat::Int8 => (max_abs / 127.0) * 0.51 + 1e-6,
                QuantFormat::Int4 => (max_abs / 7.0) * 0.51 + 1e-6,
                _ => 1.0,
            };
            for (orig, deq) in values.iter().zip(q.dequantize().iter()) {
                prop_assert!((orig - deq).abs() <= bound, "{format:?}: {orig} -> {deq}");
            }
        }
    }

    /// Softmax output is always a probability distribution, and the
    /// consolidated kernel agrees with an independently written streaming
    /// (Softermax-style, running-max with rescaled sums) realization — the
    /// hardware-friendly formulation `softmax_online` used to implement
    /// before it became a wrapper over `softmax_into`.
    #[test]
    fn softmax_invariants(logits in proptest::collection::vec(-30.0f32..30.0, 1..128)) {
        let probs = ops::softmax(&logits);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(probs.iter().all(|p| *p >= 0.0));

        // Independent streaming realization (single pass, running rescale).
        let mut running_max = f32::NEG_INFINITY;
        let mut running_sum = 0.0f32;
        for &x in &logits {
            if x > running_max {
                running_sum *= (running_max - x).exp();
                running_max = x;
            }
            running_sum += (x - running_max).exp();
        }
        for (x, p) in logits.iter().zip(probs.iter()) {
            let streaming = (x - running_max).exp() / running_sum;
            prop_assert!((streaming - p).abs() < 1e-4);
        }

        // The public wrapper stays bitwise identical to the kernel.
        let online = ops::softmax_online(&logits);
        for (a, b) in probs.iter().zip(online.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Retention-failure rates are monotone in the refresh interval, and every
    /// refresh policy produces rates consistent with its intervals.
    #[test]
    fn retention_failure_monotone(a in 46.0f64..50_000.0, b in 46.0f64..50_000.0) {
        let model = RetentionModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.failure_rate(lo) <= model.failure_rate(hi) + 1e-12);
        let rates = RefreshPolicy::Uniform(hi).bit_flip_rates(&model);
        prop_assert!((rates.hst_msb - model.failure_rate(hi)).abs() < 1e-12);
    }

    /// The importance-score accumulation used for eviction (Eq. 3) always
    /// evicts a token whose accumulated score is minimal among candidates.
    #[test]
    fn eviction_victim_has_minimal_score(scores in proptest::collection::vec(0.0f32..1.0, 4..12)) {
        use kelle::cache::ImportanceTracker;
        let mut tracker = ImportanceTracker::new();
        let labelled: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        tracker.accumulate(0, 0, &labelled);
        let victim = tracker
            .min_score_token(0, 0, 0..scores.len())
            .expect("non-empty candidates");
        let min = scores.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!((scores[victim] - min).abs() < 1e-6);
    }

    /// The capacity ledger's accounting invariants hold for any interleaving
    /// of reserve / force-reserve / grow / release: live bytes equal the sum
    /// of outstanding leases (so they can never go negative), checked
    /// reservations never push the ledger past capacity, and the high-water
    /// mark is a monotone upper bound on live bytes.
    #[test]
    fn ledger_accounting_invariants(
        capacity in 1u64..10_000,
        ops_seed in proptest::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let mut ledger = CapacityLedger::new(capacity);
        let mut live: Vec<(kelle::edram::LeaseId, u64)> = Vec::new();
        let mut expected_live: u64 = 0;
        let mut last_high_water = 0u64;
        for op in ops_seed {
            match op % 4 {
                0 => {
                    let bytes = op % (capacity * 2) + 1;
                    let before = ledger.live_bytes();
                    match ledger.reserve(bytes) {
                        Ok(lease) => {
                            prop_assert!(before + bytes <= capacity,
                                "checked reserve exceeded capacity");
                            live.push((lease, bytes));
                            expected_live += bytes;
                        }
                        Err(_) => {
                            prop_assert!(before + bytes > capacity,
                                "fitting reservation was refused");
                            prop_assert_eq!(ledger.live_bytes(), before);
                        }
                    }
                }
                1 => {
                    let bytes = op % (capacity * 2) + 1;
                    let lease = ledger.force_reserve(bytes);
                    live.push((lease, bytes));
                    expected_live += bytes;
                }
                2 => {
                    if let Some(entry) = live.last_mut() {
                        let growth = op % 500;
                        ledger.grow(entry.0, growth);
                        entry.1 += growth;
                        expected_live += growth;
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let (lease, bytes) = live.swap_remove((op as usize / 4) % live.len());
                        prop_assert_eq!(ledger.release(lease), bytes);
                        expected_live -= bytes;
                    }
                }
            }
            prop_assert_eq!(ledger.live_bytes(), expected_live);
            prop_assert_eq!(
                ledger.oversubscribed_bytes(),
                expected_live.saturating_sub(capacity)
            );
            prop_assert!(ledger.high_water_bytes() >= ledger.live_bytes());
            prop_assert!(ledger.high_water_bytes() >= last_high_water);
            last_high_water = ledger.high_water_bytes();
            prop_assert_eq!(ledger.active_leases(), live.len());
        }
    }
}

proptest! {
    // Each case drives full surrogate-model decoding for several requests
    // twice, so keep the sample count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The serving equivalence guarantee, property-tested: for random request
    /// mixes, random shared-capacity limits and every admission policy,
    /// capacity-limited serving yields per-request token streams identical to
    /// the unbounded scheduler (contention changes cost and ordering, never
    /// sampled tokens).
    #[test]
    fn capacity_limited_serving_matches_unbounded_streams(
        seed in 0u64..1000,
        sessions in 1usize..4,
        capacity_denominator in 1u64..6,
        policy_pick in 0usize..3,
    ) {
        let engine = KelleEngine::builder().policy(CachePolicy::Aerp).seed(7).build();
        let vocab = engine.model().dims().vocab;
        let requests: Vec<ServeRequest> = (0..sessions)
            .map(|i| {
                let prompt_len = 2 + ((seed as usize + i * 3) % 6);
                let decode_len = 1 + ((seed as usize * 7 + i) % 4);
                let prompt: Vec<usize> = (0..prompt_len)
                    .map(|p| (seed as usize * 31 + i * 131 + p * 7) % vocab)
                    .collect();
                ServeRequest::new(prompt, decode_len)
            })
            .collect();

        let unbounded = engine.serve_batch(requests.clone());

        let total: u64 = requests
            .iter()
            .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
            .sum();
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes((total / capacity_denominator).max(1))
            .with_admission(AdmissionPolicy::all()[policy_pick]);
        let bounded = engine.serve_batch_with(requests, config);

        for (a, b) in unbounded.outcomes.iter().zip(bounded.outcomes.iter()) {
            prop_assert_eq!(&a.generated, &b.generated);
            prop_assert_eq!(&a.cache, &b.cache);
        }
        prop_assert_eq!(
            unbounded.stats.tokens_generated,
            bounded.stats.tokens_generated
        );
        prop_assert_eq!(unbounded.stats.evictions, bounded.stats.evictions);
    }
}

proptest! {
    // Each case decodes twice (hot path + reference adapter) across all five
    // policies; keep the sample count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The borrowed `EntryRef` visitation API must produce attention outputs
    /// — and therefore whole token streams and per-step probability bits —
    /// identical to the materializing `Vec<CacheEntry>` reference adapter,
    /// for every cache policy under random prompts, budgets and the eviction
    /// schedules they induce.  This is the Eq. 1/2 order-invariance guarantee
    /// carried over to the zero-copy storage layer.
    #[test]
    fn borrowed_entry_views_match_reference_adapter(
        seed in 0u64..1000,
        budget in 4usize..20,
        window in 1usize..6,
        prompt_len in 4usize..20,
        decode_len in 1usize..8,
    ) {
        use kelle::model::generation::{run_with, run_with_via_entries, GenerationConfig};
        use kelle::model::{SurrogateDims, SurrogateModel as Surrogate};

        let config = ModelConfig::for_kind(ModelKind::Llama2_7b).with_surrogate(SurrogateDims {
            layers: 2,
            heads: 4,
            channels: 32,
            ffn_dim: 64,
            vocab: 96,
        });
        let model = Surrogate::new(config, seed);
        let heads = model.dims().heads;
        let vocab = model.dims().vocab;
        let prompt: Vec<usize> = (0..prompt_len)
            .map(|p| (seed as usize * 131 + p * 17 + 5) % vocab)
            .collect();
        let budget = kelle::cache::CacheBudget::new(budget)
            .with_recent_window(window)
            .with_sink_tokens(1);
        let gen_config = GenerationConfig::greedy(decode_len);

        for policy in CachePolicy::all() {
            let mut cache_fast = policy.build(budget, heads);
            let mut cache_ref = policy.build(budget, heads);
            let mut faults_fast = NoFaults;
            let mut faults_ref = NoFaults;
            let fast = run_with(
                &model, &prompt, gen_config, None, cache_fast.as_mut(), &mut faults_fast,
            );
            let reference = run_with_via_entries(
                &model, &prompt, gen_config, None, cache_ref.as_mut(), &mut faults_ref,
            );
            prop_assert_eq!(
                &fast.generated, &reference.generated,
                "policy {} diverged", policy.name()
            );
            for (a, b) in fast.step_probs.iter().zip(reference.step_probs.iter()) {
                let a_bits: Vec<u32> = a.iter().map(|f| f.to_bits()).collect();
                let b_bits: Vec<u32> = b.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(a_bits, b_bits, "policy {} probability bits", policy.name());
            }
            prop_assert_eq!(cache_fast.stats(), cache_ref.stats());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `kelle_tensor::dot` follows its documented multi-accumulator reference
    /// ordering bit for bit (an independently written realization of the same
    /// ordering must agree exactly), and `Matrix::matvec` rows are plain
    /// `dot` applications of the same kernel.
    #[test]
    fn dot_is_bitwise_stable_against_reference_ordering(
        xs in proptest::collection::vec(-8.0f32..8.0, 0..96),
        ys in proptest::collection::vec(-8.0f32..8.0, 0..96),
    ) {
        use kelle::tensor::{dot, DOT_LANES};

        let n = xs.len().min(ys.len());
        let a: Vec<f32> = xs[..n].to_vec();
        let b: Vec<f32> = ys[..n].to_vec();

        // Independent realization of the documented ordering.
        let mut acc = [0.0f32; DOT_LANES];
        let full = a.len() / DOT_LANES;
        for c in 0..full {
            for (j, lane) in acc.iter_mut().enumerate() {
                *lane += a[DOT_LANES * c + j] * b[DOT_LANES * c + j];
            }
        }
        for (j, lane) in acc.iter_mut().enumerate().take(a.len() % DOT_LANES) {
            let i = DOT_LANES * full + j;
            *lane += a[i] * b[i];
        }
        let reference = (acc[0] + acc[1]) + (acc[2] + acc[3]);

        prop_assert_eq!(dot(&a, &b).to_bits(), reference.to_bits());

        // The result is also within float tolerance of the plain sequential
        // sum (same quantity, different association).
        let sequential: f64 = a.iter().zip(b.iter()).map(|(x, y)| f64::from(x * y)).sum();
        let magnitude: f64 = a.iter().zip(b.iter()).map(|(x, y)| f64::from((x * y).abs())).sum();
        prop_assert!((f64::from(dot(&a, &b)) - sequential).abs() <= 1e-4 * (1.0 + magnitude));

        // Matrix-vector rows are dot() of the row with the operand.
        if !a.is_empty() {
            let m = kelle::tensor::Matrix::from_rows(vec![a.clone(), b.clone()]).unwrap();
            let out = m.matvec(&b).unwrap();
            prop_assert_eq!(out[0].to_bits(), dot(&a, &b).to_bits());
            prop_assert_eq!(out[1].to_bits(), dot(&b, &b).to_bits());
        }
    }
}
