//! Property-based tests (proptest) on the core invariants of the
//! reproduction, spanning several crates.

use kelle::cache::{AerpCache, CacheBudget, KvCacheBackend};
use kelle::edram::{RefreshPolicy, RetentionModel};
use kelle::model::fault::NoFaults;
use kelle::model::{FullKvCache, ModelConfig, ModelKind, SurrogateModel};
use kelle::tensor::{ops, QuantFormat, QuantizedVector};
use proptest::prelude::*;

fn surrogate() -> SurrogateModel {
    SurrogateModel::new(ModelConfig::for_kind(ModelKind::Llama2_7b), 17)
}

/// A pre-computed context token: (position, input vector, per-head keys,
/// per-head values).
type PreparedEntry = (usize, Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §2.2: Eq. 1 and Eq. 2 are invariant to the relative order of the KV
    /// pairs stored in the cache.  Inserting the same per-head KV entries in a
    /// different order (as happens when Kelle reuses an evicted token's slot)
    /// must not change the attention output for a fixed query token.
    #[test]
    fn attention_is_permutation_invariant(seed in 0u64..1000) {
        use kelle::model::attention::MultiHeadAttention;
        let model = surrogate();
        let heads = model.dims().heads;
        let weights = &model.weights().layers[0];
        let attn = MultiHeadAttention::new(weights, heads);

        // Pre-compute the per-head KV entries of 8 context tokens once.
        let vocab = model.dims().vocab;
        let entries: Vec<PreparedEntry> = (0..8)
            .map(|position| {
                let token = ((seed as usize) * 31 + position * 7) % vocab;
                let x = model.weights().embed(token, position);
                let (k, v) = attn.project_kv(&x, position);
                (position, x, k, v)
            })
            .collect();

        let output_for = |order: &[usize]| {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            for &idx in order {
                let (position, x, k, v) = &entries[idx];
                cache.insert(0, *position, x, k, v);
            }
            let query_x = model.weights().embed(3 % vocab, 8);
            attn.forward(0, 8, 8, &query_x, &mut cache, &mut faults).output
        };

        let forward: Vec<usize> = (0..entries.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = output_for(&forward);
        let b = output_for(&reversed);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    /// The AERP cache never exceeds its per-head budget once decoding starts,
    /// for any budget and insertion count.
    #[test]
    fn aerp_budget_never_exceeded(budget in 2usize..32, tokens in 1usize..80, heads in 1usize..6) {
        let mut cache = AerpCache::new(CacheBudget::new(budget), heads);
        cache.finish_prefill(0);
        let head_dim = 4;
        for t in 0..tokens {
            let keys: Vec<Vec<f32>> = (0..heads).map(|h| vec![(t + h) as f32; head_dim]).collect();
            let values = keys.clone();
            cache.insert(0, t, &vec![t as f32; head_dim * heads], &keys, &values);
            let scores: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| (e.token, 1.0 / (e.token + 1) as f32))
                .collect();
            cache.observe_attention(0, 0, &scores);
            for head in 0..heads {
                prop_assert!(cache.entries(0, head).len() <= budget);
            }
        }
        prop_assert!(cache.stats().insertions as usize == tokens);
    }

    /// Quantize/dequantize round trips are bounded by the format's step size.
    #[test]
    fn quantization_error_is_bounded(values in proptest::collection::vec(-4.0f32..4.0, 1..64)) {
        for format in [QuantFormat::Fp16, QuantFormat::Int8, QuantFormat::Int4] {
            let q = QuantizedVector::quantize(&values, format).unwrap();
            let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = match format {
                QuantFormat::Fp16 => (max_abs * 1e-3).max(1e-3),
                QuantFormat::Int8 => (max_abs / 127.0) * 0.51 + 1e-6,
                QuantFormat::Int4 => (max_abs / 7.0) * 0.51 + 1e-6,
                _ => 1.0,
            };
            for (orig, deq) in values.iter().zip(q.dequantize().iter()) {
                prop_assert!((orig - deq).abs() <= bound, "{format:?}: {orig} -> {deq}");
            }
        }
    }

    /// Softmax output is always a probability distribution, and the online
    /// (Softermax-style) formulation agrees with the two-pass one.
    #[test]
    fn softmax_invariants(logits in proptest::collection::vec(-30.0f32..30.0, 1..128)) {
        let probs = ops::softmax(&logits);
        let online = ops::softmax_online(&logits);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(probs.iter().all(|p| *p >= 0.0));
        for (a, b) in probs.iter().zip(online.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Retention-failure rates are monotone in the refresh interval, and every
    /// refresh policy produces rates consistent with its intervals.
    #[test]
    fn retention_failure_monotone(a in 46.0f64..50_000.0, b in 46.0f64..50_000.0) {
        let model = RetentionModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.failure_rate(lo) <= model.failure_rate(hi) + 1e-12);
        let rates = RefreshPolicy::Uniform(hi).bit_flip_rates(&model);
        prop_assert!((rates.hst_msb - model.failure_rate(hi)).abs() < 1e-12);
    }

    /// The importance-score accumulation used for eviction (Eq. 3) always
    /// evicts a token whose accumulated score is minimal among candidates.
    #[test]
    fn eviction_victim_has_minimal_score(scores in proptest::collection::vec(0.0f32..1.0, 4..12)) {
        use kelle::cache::ImportanceTracker;
        let mut tracker = ImportanceTracker::new();
        let labelled: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        tracker.accumulate(0, 0, &labelled);
        let victim = tracker
            .min_score_token(0, 0, 0..scores.len())
            .expect("non-empty candidates");
        let min = scores.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!((scores[victim] - min).abs() < 1e-6);
    }
}
