//! Property-based tests (proptest) on the core invariants of the
//! reproduction, spanning several crates.

use kelle::cache::{AerpCache, CacheBudget, KvCacheBackend};
use kelle::edram::{CapacityLedger, RefreshPolicy, RetentionModel};
use kelle::model::fault::NoFaults;
use kelle::model::{FullKvCache, ModelConfig, ModelKind, SurrogateModel};
use kelle::tensor::{ops, QuantFormat, QuantizedVector};
use kelle::{AdmissionPolicy, CachePolicy, KelleEngine, SchedulerConfig, ServeRequest};
use proptest::prelude::*;

fn surrogate() -> SurrogateModel {
    SurrogateModel::new(ModelConfig::for_kind(ModelKind::Llama2_7b), 17)
}

/// A pre-computed context token: (position, input vector, per-head keys,
/// per-head values).
type PreparedEntry = (usize, Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §2.2: Eq. 1 and Eq. 2 are invariant to the relative order of the KV
    /// pairs stored in the cache.  Inserting the same per-head KV entries in a
    /// different order (as happens when Kelle reuses an evicted token's slot)
    /// must not change the attention output for a fixed query token.
    #[test]
    fn attention_is_permutation_invariant(seed in 0u64..1000) {
        use kelle::model::attention::MultiHeadAttention;
        let model = surrogate();
        let heads = model.dims().heads;
        let weights = &model.weights().layers[0];
        let attn = MultiHeadAttention::new(weights, heads);

        // Pre-compute the per-head KV entries of 8 context tokens once.
        let vocab = model.dims().vocab;
        let entries: Vec<PreparedEntry> = (0..8)
            .map(|position| {
                let token = ((seed as usize) * 31 + position * 7) % vocab;
                let x = model.weights().embed(token, position);
                let (k, v) = attn.project_kv(&x, position);
                (position, x, k, v)
            })
            .collect();

        let output_for = |order: &[usize]| {
            let mut cache = FullKvCache::new();
            let mut faults = NoFaults;
            for &idx in order {
                let (position, x, k, v) = &entries[idx];
                cache.insert(0, *position, x, k, v);
            }
            let query_x = model.weights().embed(3 % vocab, 8);
            attn.forward(0, 8, 8, &query_x, &mut cache, &mut faults).output
        };

        let forward: Vec<usize> = (0..entries.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = output_for(&forward);
        let b = output_for(&reversed);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    /// The AERP cache never exceeds its per-head budget once decoding starts,
    /// for any budget and insertion count.
    #[test]
    fn aerp_budget_never_exceeded(budget in 2usize..32, tokens in 1usize..80, heads in 1usize..6) {
        let mut cache = AerpCache::new(CacheBudget::new(budget), heads);
        cache.finish_prefill(0);
        let head_dim = 4;
        for t in 0..tokens {
            let keys: Vec<Vec<f32>> = (0..heads).map(|h| vec![(t + h) as f32; head_dim]).collect();
            let values = keys.clone();
            cache.insert(0, t, &vec![t as f32; head_dim * heads], &keys, &values);
            let scores: Vec<(usize, f32)> = cache
                .entries(0, 0)
                .iter()
                .map(|e| (e.token, 1.0 / (e.token + 1) as f32))
                .collect();
            cache.observe_attention(0, 0, &scores);
            for head in 0..heads {
                prop_assert!(cache.entries(0, head).len() <= budget);
            }
        }
        prop_assert!(cache.stats().insertions as usize == tokens);
    }

    /// Quantize/dequantize round trips are bounded by the format's step size.
    #[test]
    fn quantization_error_is_bounded(values in proptest::collection::vec(-4.0f32..4.0, 1..64)) {
        for format in [QuantFormat::Fp16, QuantFormat::Int8, QuantFormat::Int4] {
            let q = QuantizedVector::quantize(&values, format).unwrap();
            let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = match format {
                QuantFormat::Fp16 => (max_abs * 1e-3).max(1e-3),
                QuantFormat::Int8 => (max_abs / 127.0) * 0.51 + 1e-6,
                QuantFormat::Int4 => (max_abs / 7.0) * 0.51 + 1e-6,
                _ => 1.0,
            };
            for (orig, deq) in values.iter().zip(q.dequantize().iter()) {
                prop_assert!((orig - deq).abs() <= bound, "{format:?}: {orig} -> {deq}");
            }
        }
    }

    /// Softmax output is always a probability distribution, and the online
    /// (Softermax-style) formulation agrees with the two-pass one.
    #[test]
    fn softmax_invariants(logits in proptest::collection::vec(-30.0f32..30.0, 1..128)) {
        let probs = ops::softmax(&logits);
        let online = ops::softmax_online(&logits);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(probs.iter().all(|p| *p >= 0.0));
        for (a, b) in probs.iter().zip(online.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Retention-failure rates are monotone in the refresh interval, and every
    /// refresh policy produces rates consistent with its intervals.
    #[test]
    fn retention_failure_monotone(a in 46.0f64..50_000.0, b in 46.0f64..50_000.0) {
        let model = RetentionModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.failure_rate(lo) <= model.failure_rate(hi) + 1e-12);
        let rates = RefreshPolicy::Uniform(hi).bit_flip_rates(&model);
        prop_assert!((rates.hst_msb - model.failure_rate(hi)).abs() < 1e-12);
    }

    /// The importance-score accumulation used for eviction (Eq. 3) always
    /// evicts a token whose accumulated score is minimal among candidates.
    #[test]
    fn eviction_victim_has_minimal_score(scores in proptest::collection::vec(0.0f32..1.0, 4..12)) {
        use kelle::cache::ImportanceTracker;
        let mut tracker = ImportanceTracker::new();
        let labelled: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        tracker.accumulate(0, 0, &labelled);
        let victim = tracker
            .min_score_token(0, 0, 0..scores.len())
            .expect("non-empty candidates");
        let min = scores.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!((scores[victim] - min).abs() < 1e-6);
    }

    /// The capacity ledger's accounting invariants hold for any interleaving
    /// of reserve / force-reserve / grow / release: live bytes equal the sum
    /// of outstanding leases (so they can never go negative), checked
    /// reservations never push the ledger past capacity, and the high-water
    /// mark is a monotone upper bound on live bytes.
    #[test]
    fn ledger_accounting_invariants(
        capacity in 1u64..10_000,
        ops_seed in proptest::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let mut ledger = CapacityLedger::new(capacity);
        let mut live: Vec<(kelle::edram::LeaseId, u64)> = Vec::new();
        let mut expected_live: u64 = 0;
        let mut last_high_water = 0u64;
        for op in ops_seed {
            match op % 4 {
                0 => {
                    let bytes = op % (capacity * 2) + 1;
                    let before = ledger.live_bytes();
                    match ledger.reserve(bytes) {
                        Ok(lease) => {
                            prop_assert!(before + bytes <= capacity,
                                "checked reserve exceeded capacity");
                            live.push((lease, bytes));
                            expected_live += bytes;
                        }
                        Err(_) => {
                            prop_assert!(before + bytes > capacity,
                                "fitting reservation was refused");
                            prop_assert_eq!(ledger.live_bytes(), before);
                        }
                    }
                }
                1 => {
                    let bytes = op % (capacity * 2) + 1;
                    let lease = ledger.force_reserve(bytes);
                    live.push((lease, bytes));
                    expected_live += bytes;
                }
                2 => {
                    if let Some(entry) = live.last_mut() {
                        let growth = op % 500;
                        ledger.grow(entry.0, growth);
                        entry.1 += growth;
                        expected_live += growth;
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let (lease, bytes) = live.swap_remove((op as usize / 4) % live.len());
                        prop_assert_eq!(ledger.release(lease), bytes);
                        expected_live -= bytes;
                    }
                }
            }
            prop_assert_eq!(ledger.live_bytes(), expected_live);
            prop_assert_eq!(
                ledger.oversubscribed_bytes(),
                expected_live.saturating_sub(capacity)
            );
            prop_assert!(ledger.high_water_bytes() >= ledger.live_bytes());
            prop_assert!(ledger.high_water_bytes() >= last_high_water);
            last_high_water = ledger.high_water_bytes();
            prop_assert_eq!(ledger.active_leases(), live.len());
        }
    }
}

proptest! {
    // Each case drives full surrogate-model decoding for several requests
    // twice, so keep the sample count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The serving equivalence guarantee, property-tested: for random request
    /// mixes, random shared-capacity limits and every admission policy,
    /// capacity-limited serving yields per-request token streams identical to
    /// the unbounded scheduler (contention changes cost and ordering, never
    /// sampled tokens).
    #[test]
    fn capacity_limited_serving_matches_unbounded_streams(
        seed in 0u64..1000,
        sessions in 1usize..4,
        capacity_denominator in 1u64..6,
        policy_pick in 0usize..3,
    ) {
        let engine = KelleEngine::builder().policy(CachePolicy::Aerp).seed(7).build();
        let vocab = engine.model().dims().vocab;
        let requests: Vec<ServeRequest> = (0..sessions)
            .map(|i| {
                let prompt_len = 2 + ((seed as usize + i * 3) % 6);
                let decode_len = 1 + ((seed as usize * 7 + i) % 4);
                let prompt: Vec<usize> = (0..prompt_len)
                    .map(|p| (seed as usize * 31 + i * 131 + p * 7) % vocab)
                    .collect();
                ServeRequest::new(prompt, decode_len)
            })
            .collect();

        let unbounded = engine.serve_batch(requests.clone());

        let total: u64 = requests
            .iter()
            .map(|r| engine.kv_footprint_bytes(r.prompt().len() + r.decode_len()))
            .sum();
        let config = SchedulerConfig::default()
            .with_kv_capacity_bytes((total / capacity_denominator).max(1))
            .with_admission(AdmissionPolicy::all()[policy_pick]);
        let bounded = engine.serve_batch_with(requests, config);

        for (a, b) in unbounded.outcomes.iter().zip(bounded.outcomes.iter()) {
            prop_assert_eq!(&a.generated, &b.generated);
            prop_assert_eq!(&a.cache, &b.cache);
        }
        prop_assert_eq!(
            unbounded.stats.tokens_generated,
            bounded.stats.tokens_generated
        );
        prop_assert_eq!(unbounded.stats.evictions, bounded.stats.evictions);
    }
}
