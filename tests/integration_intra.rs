#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Intra-session parallelism acceptance suite: fanning one session's decode
//! step across the worker pool (per-head attention jobs + row-blocked
//! projections) must be **bit-identical** to sequential decode — token
//! streams, per-step probability bits and fault statistics — for every
//! worker count, all five cache policies and fault-enabled refresh
//! configurations, on both the session API and the batch scheduler's
//! [`ParallelAxis`] knob.
//!
//! The CI determinism gate runs this suite at explicit worker counts via the
//! `KELLE_TEST_WORKERS` environment variable (comma-separated, e.g.
//! `KELLE_TEST_WORKERS=1,2,4`); without it the suite defaults to {1, 2, 4}.

use kelle::edram::RefreshPolicy;
use kelle::parallel::WorkerPool;
use kelle::tier::TierConfig;
use kelle::{CachePolicy, KelleEngine, ParallelAxis, SchedulerConfig, ServeRequest};
use proptest::prelude::*;

/// Worker counts under test: `KELLE_TEST_WORKERS` (the CI determinism gate
/// sets `1,2,4`) or {1, 2, 4} by default.
fn worker_counts() -> Vec<usize> {
    match std::env::var("KELLE_TEST_WORKERS") {
        Ok(raw) => {
            let counts: Vec<usize> = raw
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad KELLE_TEST_WORKERS entry: {part:?}"))
                })
                .collect();
            assert!(!counts.is_empty(), "KELLE_TEST_WORKERS must list counts");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// A fault-enabled engine: a relaxed uniform refresh interval injects
/// retention faults at a rate high enough that the fixtures below actually
/// exercise the per-(layer, head) fault-RNG partitioning, per `policy`.
fn faulty_engine(policy: CachePolicy, seed: u64) -> KelleEngine {
    KelleEngine::builder()
        .policy(policy)
        .refresh_policy(RefreshPolicy::Uniform(240.0))
        .seed(seed)
        .build()
}

fn prompt(seed: usize) -> Vec<usize> {
    (0..20).map(|i| (i * 13 + seed * 29 + 3) % 512).collect()
}

/// Decodes `steps` tokens on one session, returning the token stream and
/// every step's probability bits.  With `workers` set, decoding fans out on
/// the intra axis through a [`WorkerPool`] runner.
fn decode_session(
    engine: &KelleEngine,
    steps: usize,
    workers: Option<usize>,
) -> (Vec<usize>, Vec<u32>, kelle::model::FaultStats) {
    let mut session = engine.open_session();
    session.prefill(&prompt(1));
    let mut tokens = Vec::with_capacity(steps);
    let mut prob_bits = Vec::new();
    match workers {
        None => {
            for _ in 0..steps {
                let step = session.decode_one();
                tokens.push(step.token);
                prob_bits.extend(step.probs.iter().map(|p| p.to_bits()));
            }
        }
        Some(count) => std::thread::scope(|scope| {
            let pool = WorkerPool::start(scope, count);
            let runner = pool.runner();
            for _ in 0..steps {
                let step = session.decode_one_with(&runner);
                tokens.push(step.token);
                prob_bits.extend(step.probs.iter().map(|p| p.to_bits()));
            }
        }),
    }
    let faults = session.fault_stats();
    (tokens, prob_bits, faults)
}

#[test]
fn intra_decode_is_bit_identical_to_sequential_for_all_policies_with_faults() {
    let steps = 8;
    let mut total_flips = 0u64;
    for policy in CachePolicy::all() {
        let (seq_tokens, seq_bits, seq_faults) =
            decode_session(&faulty_engine(policy, 7), steps, None);
        total_flips += seq_faults.bits_flipped;
        for workers in worker_counts() {
            let (tokens, bits, faults) =
                decode_session(&faulty_engine(policy, 7), steps, Some(workers));
            assert_eq!(
                tokens,
                seq_tokens,
                "token stream diverged: policy={}, workers={workers}",
                policy.name()
            );
            assert_eq!(
                bits,
                seq_bits,
                "probability bits diverged: policy={}, workers={workers}",
                policy.name()
            );
            assert_eq!(
                faults,
                seq_faults,
                "fault stats diverged: policy={}, workers={workers}",
                policy.name()
            );
        }
    }
    assert!(
        total_flips > 0,
        "the relaxed-refresh fixture must actually inject faults"
    );
}

/// One request per cache policy with staggered decode lengths, so the batch
/// narrows as requests complete (auto mode flips from session- to
/// intra-parallel mid-run).
fn policy_mix() -> Vec<ServeRequest> {
    CachePolicy::all()
        .into_iter()
        .enumerate()
        .map(|(i, policy)| {
            ServeRequest::builder(prompt(i))
                .decode_len(3 + 2 * i)
                .policy(policy)
                .build()
        })
        .collect()
}

#[test]
fn every_axis_serves_batches_bit_identically_to_sequential() {
    let sequential_engine = faulty_engine(CachePolicy::Aerp, 11);
    let sequential = sequential_engine.serve_batch(policy_mix());
    for axis in [
        ParallelAxis::Session,
        ParallelAxis::Intra,
        ParallelAxis::Auto,
    ] {
        for workers in worker_counts() {
            let engine = faulty_engine(CachePolicy::Aerp, 11);
            let outcome = kelle::parallel::serve_batch_parallel(
                &engine,
                policy_mix(),
                SchedulerConfig::default().with_parallel_axis(axis),
                workers,
                |_, _| {},
            );
            let label = format!("axis={axis:?}, workers={workers}");
            assert_eq!(outcome.outcomes.len(), sequential.outcomes.len(), "{label}");
            for (i, (a, b)) in sequential
                .outcomes
                .iter()
                .zip(outcome.outcomes.iter())
                .enumerate()
            {
                assert_eq!(a.generated, b.generated, "{label}: stream of request {i}");
                assert_eq!(a.trace, b.trace, "{label}: trace of request {i}");
                assert_eq!(a.faults, b.faults, "{label}: fault stats of request {i}");
                assert_eq!(a.cache, b.cache, "{label}: cache stats of request {i}");
            }
            assert_eq!(outcome.stats, sequential.stats, "{label}: aggregate stats");
            assert_eq!(
                outcome.contention, sequential.contention,
                "{label}: contention metrics"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random request mixes served with a random parallel axis *and* tiering
    /// enabled are bit-identical to sequential serving: the two parallelism
    /// axes compose with the memory-hierarchy overlay at any worker count.
    #[test]
    fn random_mixes_are_axis_and_worker_invariant_with_tiering(
        seed in 0u64..500,
        shapes in proptest::collection::vec(0usize..10_000, 2..6),
        axis_pick in 0usize..3,
        capacity_tokens in 8usize..40,
    ) {
        // Each sampled integer encodes one request's shape: prompt length in
        // 1..=12, decode length in 1..=4, policy index in 0..5.
        let requests: Vec<ServeRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| {
                let prompt_len = 1 + shape % 12;
                let decode_len = 1 + (shape / 12) % 4;
                let policy_idx = (shape / 48) % 5;
                let prompt: Vec<usize> =
                    (0..prompt_len).map(|t| (seed as usize + i * 31 + t * 7) % 512).collect();
                ServeRequest::builder(prompt)
                    .decode_len(decode_len)
                    .policy(CachePolicy::all()[policy_idx])
                    .build()
            })
            .collect();
        let axis = [ParallelAxis::Session, ParallelAxis::Intra, ParallelAxis::Auto][axis_pick];
        let engine = KelleEngine::builder().seed(seed).build();
        let config = SchedulerConfig::default()
            .with_tiering(TierConfig::with_edram_budget(
                engine.kv_footprint_bytes(capacity_tokens),
            ))
            .with_parallel_axis(axis);
        let sequential = engine.serve_batch_with(requests.clone(), config);
        for workers in [2, 3] {
            let engine = KelleEngine::builder().seed(seed).build();
            let parallel = kelle::parallel::serve_batch_parallel(
                &engine,
                requests.clone(),
                config,
                workers,
                |_, _| {},
            );
            prop_assert_eq!(sequential.outcomes.len(), parallel.outcomes.len());
            for (a, b) in sequential.outcomes.iter().zip(parallel.outcomes.iter()) {
                prop_assert_eq!(&a.generated, &b.generated);
                prop_assert_eq!(a.faults, b.faults);
                prop_assert_eq!(&a.trace, &b.trace);
            }
            prop_assert_eq!(&sequential.contention, &parallel.contention);
            prop_assert_eq!(&sequential.tiering, &parallel.tiering);
            prop_assert_eq!(sequential.stats, parallel.stats);
        }
    }
}
