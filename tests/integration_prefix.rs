#![allow(deprecated)]
// The serve_batch* wrappers are exercised on purpose: these
// suites double as delegation coverage for the unified `KelleEngine::serve`.

//! Acceptance tests of cross-session prefix KV sharing (`kelle::prefix`).
//!
//! The load-bearing guarantee: a prefix-cache hit is **observationally
//! invisible** — bit-identical token streams, probability distributions and
//! fault statistics to a cold session — for every cache policy, while the
//! matched prefix's prefill compute runs once (at publication) and its
//! ledger bytes are charged once (the shared pool).

use kelle::edram::RefreshPolicy;
use kelle::model::CacheStats;
use kelle::workloads::SharedPromptScenario;
use kelle::{CachePolicy, EngineConfig, KelleEngine, PrefixSharingConfig, ServeRequest};
use proptest::prelude::*;

/// A deterministic prompt of `len` tokens.
fn prompt_tokens(len: usize, salt: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 13 + salt * 29 + 3) % 512).collect()
}

/// Serves `prompt` on a fresh session of `engine` (honouring `policy`),
/// capturing everything an observer could compare: tokens, per-step
/// probability bits, fault counters and final cache stats.
fn observe(
    engine: &KelleEngine,
    policy: CachePolicy,
    prompt: &[usize],
    decode_len: usize,
) -> (Vec<usize>, Vec<Vec<u32>>, u64, u64, CacheStats, usize) {
    let request = ServeRequest::builder(prompt.to_vec())
        .policy(policy)
        .decode_len(decode_len)
        .build();
    let mut session = engine.open_session_for(&request);
    session.prefill(prompt);
    let mut tokens = Vec::new();
    let mut probs = Vec::new();
    for _ in 0..decode_len {
        let step = session.decode_one();
        tokens.push(step.token);
        probs.push(step.probs.iter().map(|p| p.to_bits()).collect());
    }
    let faults = session.fault_stats();
    (
        tokens,
        probs,
        faults.words_examined,
        faults.bits_flipped,
        session.cache_stats(),
        session.prefix_hit_tokens(),
    )
}

/// Prefix-hit sessions are bit-identical to cold sessions for all five
/// policies, under the engine's default (non-trivial) 2DRP fault model.
#[test]
fn prefix_hit_is_bit_identical_for_all_policies() {
    let prefix = prompt_tokens(16, 0);
    let mut prompt = prefix.clone();
    prompt.extend(prompt_tokens(5, 7));

    let cold_engine = KelleEngine::new(EngineConfig::default());
    let sharing = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .build();
    for policy in CachePolicy::all() {
        let request = ServeRequest::builder(prefix.clone())
            .policy(policy)
            .decode_len(1)
            .build();
        assert!(
            sharing.publish_prefix_for(&prefix, &request),
            "{policy:?} publish"
        );
        let cold = observe(&cold_engine, policy, &prompt, 8);
        let hit = observe(&sharing, policy, &prompt, 8);
        assert_eq!(hit.5, prefix.len(), "{policy:?} must hit the prefix");
        assert_eq!(cold.5, 0);
        assert_eq!(hit.0, cold.0, "{policy:?} token stream");
        assert_eq!(hit.1, cold.1, "{policy:?} probability bits");
        assert_eq!(hit.2, cold.2, "{policy:?} fault words examined");
        assert_eq!(hit.3, cold.3, "{policy:?} fault bits flipped");
        assert_eq!(
            hit.4.evictions, cold.4.evictions,
            "{policy:?} eviction count"
        );
        assert_eq!(hit.4.bytes_fp16, cold.4.bytes_fp16, "{policy:?} footprint");
        // The unit-of-account invariant holds on both sides.
        assert_eq!(hit.4.bytes_fp16, hit.4.shared_bytes + hit.4.private_bytes);
        assert_eq!(
            cold.4.bytes_fp16,
            cold.4.shared_bytes + cold.4.private_bytes
        );
        assert_eq!(cold.4.shared_bytes, 0, "cold sessions hold no shared bytes");
    }
}

/// A mid-stream eviction reaching into the shared region privatizes the
/// arenas (copy-on-evict) — and the stream still matches a cold session.
#[test]
fn mid_stream_eviction_forces_copy_on_evict_privatization() {
    use kelle::cache::CacheBudget;
    let prefix = prompt_tokens(16, 3);
    let mut prompt = prefix.clone();
    prompt.extend([7, 11]);
    // Budget 20 with 2 sinks: prefill holds 18 entries (shared prefix still
    // intact), decode crosses 20 a few steps in and evicts the oldest
    // non-sink token — which lives in the shared region.
    let budget = CacheBudget::new(20).with_sink_tokens(2);
    let build = |sharing: bool| {
        let mut builder = KelleEngine::builder()
            .policy(CachePolicy::StreamingLlm)
            .budget(budget);
        if sharing {
            builder = builder.prefix_sharing(PrefixSharingConfig::enabled());
        }
        builder.build()
    };

    let sharing = build(true);
    assert!(sharing.publish_prefix(&prefix));
    let mut session = sharing.open_session();
    session.prefill(&prompt);
    assert_eq!(session.prefix_hit_tokens(), prefix.len());
    let after_prefill = session.cache_stats();
    assert!(
        after_prefill.shared_bytes > 0,
        "prefix is adopted zero-copy through prefill"
    );
    assert_eq!(
        after_prefill.bytes_fp16,
        after_prefill.shared_bytes + after_prefill.private_bytes
    );

    let mut generated = Vec::new();
    for _ in 0..8 {
        generated.push(session.decode_one().token);
    }
    let after_decode = session.cache_stats();
    assert!(
        after_decode.evictions > 0,
        "budget forces mid-stream evictions"
    );
    assert_eq!(
        after_decode.shared_bytes, 0,
        "eviction into the shared region privatized the arenas"
    );
    assert_eq!(after_decode.bytes_fp16, after_decode.private_bytes);

    // The privatization is invisible to the stream.
    let cold = build(false);
    let mut cold_session = cold.open_session();
    cold_session.prefill(&prompt);
    let mut cold_generated = Vec::new();
    for _ in 0..8 {
        cold_generated.push(cold_session.decode_one().token);
    }
    assert_eq!(generated, cold_generated);
    assert_eq!(
        session.fault_stats().bits_flipped,
        cold_session.fault_stats().bits_flipped
    );
}

/// The headline acceptance: ≥ 8 sessions sharing a 256-token system prompt
/// — prefix compute once, ledger bytes once, streams bit-identical.
#[test]
fn eight_sessions_share_a_256_token_system_prompt() {
    let scenario = SharedPromptScenario::new(8, 256, 8).with_decode_len(4);
    let system = scenario.system_prompt();
    let requests: Vec<ServeRequest> = scenario
        .prompts()
        .into_iter()
        .map(|p| ServeRequest::new(p, scenario.decode_len))
        .collect();
    // Conservative refresh keeps the fault model trivial so the 256-token
    // fleet stays fast; the fault-stream equivalence is covered by the
    // small-prefix tests above.
    let build = |sharing: bool| {
        let mut builder = KelleEngine::builder()
            .policy(CachePolicy::Full)
            .refresh_policy(RefreshPolicy::Conservative);
        if sharing {
            builder = builder.prefix_sharing(PrefixSharingConfig::enabled());
        }
        builder.build()
    };

    let sharing = build(true);
    assert!(sharing.publish_prefix(&system));
    let batch = sharing.serve_batch(requests.clone());

    // (a) Prefill compute for the shared prefix executed once: every
    // session computed only its 8-token suffix; the store holds exactly one
    // 256-token publication.
    for outcome in &batch.outcomes {
        assert_eq!(outcome.prefix_hit_tokens, 256);
        assert_eq!(outcome.prefilled_tokens, 8);
    }
    let store = sharing.prefix_stats();
    assert_eq!(store.published, 1);
    assert_eq!(store.published_tokens, 256);
    assert_eq!(store.hits, 8);
    assert_eq!(batch.prefix.hit_requests, 8);
    assert_eq!(batch.prefix.hit_tokens, 8 * 256);
    assert_eq!(batch.stats.prefix_hit_tokens, 8 * 256);

    // (b) Ledger-resident KV bytes for the prefix charged once: the shared
    // pool holds one prefix footprint, deduplicating the other seven, and
    // the batch's peak residency shrinks by exactly those seven copies.
    let prefix_bytes = sharing.kv_footprint_bytes(256);
    let full_bytes = sharing.kv_footprint_bytes(256 + 8 + 4);
    assert_eq!(batch.prefix.shared_bytes, prefix_bytes);
    assert_eq!(batch.prefix.deduplicated_bytes, 7 * prefix_bytes);
    let expected_peak = prefix_bytes + 8 * (full_bytes - prefix_bytes);
    assert_eq!(batch.contention.peak_residency_bytes, expected_peak);

    // (c) Every session's stream is bit-identical to its cold-start run.
    let cold = build(false);
    let cold_batch = cold.serve_batch(requests);
    assert_eq!(
        cold_batch.contention.peak_residency_bytes,
        8 * full_bytes,
        "the sharing-oblivious stack charges the prefix per session"
    );
    for (a, b) in cold_batch.outcomes.iter().zip(batch.outcomes.iter()) {
        assert_eq!(a.generated, b.generated);
    }
    // Surrogate-level zero-copy under the full policy: each session's cache
    // reports the segment's bytes as shared, not private.
    for outcome in &batch.outcomes {
        assert!(outcome.cache.shared_bytes > 0);
        assert_eq!(
            outcome.cache.bytes_fp16,
            outcome.cache.shared_bytes + outcome.cache.private_bytes
        );
    }
}

/// `CacheStats::bytes_fp16 == shared_bytes + private_bytes` holds at every
/// decode step of every policy, shared or cold (the split-regression
/// satellite).
#[test]
fn cache_stats_split_sums_at_every_step() {
    let prefix = prompt_tokens(12, 1);
    let mut prompt = prefix.clone();
    prompt.extend([5, 6, 7]);
    let engine = KelleEngine::builder()
        .prefix_sharing(PrefixSharingConfig::enabled())
        .build();
    for policy in CachePolicy::all() {
        let request = ServeRequest::builder(prompt.clone())
            .policy(policy)
            .decode_len(6)
            .build();
        // Each policy publishes under its own key; failures (e.g. duplicate
        // boundaries) are fine — the invariant must hold hit or cold.
        let _ = engine.publish_prefix_for(&prefix, &request);
        let outcome = engine.serve_request(request);
        for step in &outcome.trace.steps {
            let stats = &step.cache_stats;
            assert_eq!(
                stats.bytes_fp16,
                stats.shared_bytes + stats.private_bytes,
                "{policy:?} split must sum at every step"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized equivalence: any policy, prefix/suffix/decode lengths and
    /// seed — hit and cold sessions agree on tokens, probability bits and
    /// fault counters.
    #[test]
    fn prefix_hit_equivalence_holds_for_random_shapes(
        policy_index in 0usize..5,
        prefix_len in 8usize..20,
        suffix_len in 0usize..6,
        decode_len in 1usize..5,
        seed in 0u64..1000,
    ) {
        let policy = CachePolicy::all()[policy_index];
        let prefix = prompt_tokens(prefix_len, seed as usize);
        let mut prompt = prefix.clone();
        prompt.extend(prompt_tokens(suffix_len, seed as usize + 1));

        let cold_engine = KelleEngine::builder().seed(seed).build();
        let sharing = KelleEngine::builder()
            .seed(seed)
            .prefix_sharing(PrefixSharingConfig::enabled())
            .build();
        let request = ServeRequest::builder(prefix.clone())
            .policy(policy)
            .decode_len(1)
            .build();
        prop_assert!(sharing.publish_prefix_for(&prefix, &request));

        let cold = observe(&cold_engine, policy, &prompt, decode_len);
        let hit = observe(&sharing, policy, &prompt, decode_len);
        prop_assert_eq!(hit.5, prefix.len());
        prop_assert_eq!(hit.0, cold.0);
        prop_assert_eq!(hit.1, cold.1);
        prop_assert_eq!((hit.2, hit.3), (cold.2, cold.3));
        prop_assert_eq!(hit.4.evictions, cold.4.evictions);
    }
}
